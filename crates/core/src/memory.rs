//! Device-memory footprint estimation.
//!
//! GBDT-MO's memory appetite is a central concern of the paper ("memory
//! usage substantially escalates during the histogram building phase
//! because of the inclusion of the output dimension"; CPU baselines
//! "often run out of memory at greater depths", Fig. 7). This module
//! predicts the device-resident footprint of a training configuration
//! so callers can check it against a device's VRAM *before* committing
//! — and so the harness can report, at full paper shapes, which
//! configurations would not fit.

use crate::config::TrainConfig;
use crate::hist::NodeHistogram;
use serde::{Deserialize, Serialize};

/// Reusable pool of [`NodeHistogram`] buffers.
///
/// A level of the tree grower holds one histogram per frontier node
/// (plus surviving parent buffers on the subtraction path); each buffer
/// is multi-MB for wide × many-output configurations, so allocating and
/// freeing them per node dominates *host* time. The pool keeps released
/// buffers for reuse: it grows to the maximum number of simultaneously
/// live histograms of any level and then stops allocating — across
/// levels *and* across trees when the caller keeps the pool alive (the
/// trainer does).
///
/// Buffers come back **dirty**: callers must either reset them
/// ([`crate::hist::accumulate_only`] does) or overwrite every element
/// ([`NodeHistogram::assign_difference`] does).
#[derive(Debug)]
pub struct HistogramPool {
    num_features: usize,
    d: usize,
    bins: usize,
    free: Vec<NodeHistogram>,
    allocated: usize,
}

impl HistogramPool {
    /// Create an empty pool producing `num_features × d × bins`
    /// histograms.
    pub fn new(num_features: usize, d: usize, bins: usize) -> Self {
        HistogramPool {
            num_features,
            d,
            bins,
            free: Vec::new(),
            allocated: 0,
        }
    }

    /// The `(num_features, d, bins)` shape of pooled buffers.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.num_features, self.d, self.bins)
    }

    /// Re-target the pool to a new shape, dropping cached buffers if it
    /// changed (the per-tree feature subsample keeps the count constant,
    /// so this is a no-op within one training run).
    pub fn ensure_shape(&mut self, num_features: usize, d: usize, bins: usize) {
        if self.shape() != (num_features, d, bins) {
            self.allocated -= self.free.len();
            self.free.clear();
            self.num_features = num_features;
            self.d = d;
            self.bins = bins;
        }
    }

    /// Take a buffer (reused if available, freshly allocated otherwise).
    /// The contents are unspecified — see the type-level note.
    pub fn acquire(&mut self) -> NodeHistogram {
        self.free.pop().unwrap_or_else(|| {
            self.allocated += 1;
            NodeHistogram::new(self.num_features, self.d, self.bins)
        })
    }

    /// Return a buffer for reuse.
    pub fn release(&mut self, hist: NodeHistogram) {
        debug_assert_eq!(
            (hist.num_features, hist.d, hist.bins),
            self.shape(),
            "released histogram has a foreign shape"
        );
        self.free.push(hist);
    }

    /// Number of buffers ever allocated and still owned by this pool's
    /// clients or free list (the high-water mark of live histograms).
    pub fn allocated(&self) -> usize {
        self.allocated
    }

    /// Number of buffers currently cached for reuse.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Bytes held across all allocated buffers (live + cached).
    pub fn bytes(&self) -> usize {
        let one =
            self.num_features * self.d * self.bins * 2 * 8 + self.num_features * self.bins * 4;
        self.allocated * one
    }
}

/// Byte-level breakdown of a training run's device residency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryEstimate {
    /// Column-major `u8` bin matrix.
    pub binned_bytes: usize,
    /// Packed 4-per-`u32` bins (kept alongside for the +wo kernels).
    pub packed_bytes: usize,
    /// Gradient + Hessian storage (`n × d` each).
    pub gradient_bytes: usize,
    /// Raw score matrix (`n × d` f32).
    pub score_bytes: usize,
    /// Histogram accumulators: one reusable buffer, or one per open
    /// frontier node when subtraction retains parents.
    pub histogram_bytes: usize,
    /// Instance-index lists across the widest frontier.
    pub index_bytes: usize,
    /// Sum of the above.
    pub total_bytes: usize,
}

impl MemoryEstimate {
    /// Human-readable size.
    pub fn total_human(&self) -> String {
        human(self.total_bytes)
    }

    /// Whether the estimate fits a device with `vram_bytes` of memory,
    /// leaving 10% headroom for the allocator and kernel scratch.
    pub fn fits(&self, vram_bytes: usize) -> bool {
        (self.total_bytes as f64) <= vram_bytes as f64 * 0.9
    }
}

/// Render bytes with binary units.
pub fn human(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.2} {}", UNITS[u])
    }
}

/// Estimate the training footprint of `config` on an `n × m` dataset
/// with `d` outputs.
pub fn estimate_training_bytes(
    n: usize,
    m: usize,
    d: usize,
    config: &TrainConfig,
) -> MemoryEstimate {
    let bins = config.max_bins;
    let binned_bytes = n * m;
    let packed_bytes = n.div_ceil(4) * 4 * m;
    let grad_elem = if config.hist.quantized_gradients {
        2
    } else {
        4
    };
    let gradient_bytes = n * d * 2 * grad_elem;
    let score_bytes = n * d * 4;
    // One histogram = m × bins × d × 2 gradient sums (f64 accumulators)
    // + m × bins counts.
    let one_hist = m * bins * d * 2 * 8 + m * bins * 4;
    let live_hists = if config.hist.subtraction {
        // Parent histograms ride along to the next level: up to half the
        // frontier inherits, so ~2^(depth−1) + 1 buffers peak.
        (1usize << config.max_depth.saturating_sub(1)) + 1
    } else {
        1
    };
    let histogram_bytes = one_hist * live_hists;
    // Widest frontier holds every instance exactly once, twice over
    // during partition (in + out).
    let index_bytes = n * 4 * 2;
    let total_bytes =
        binned_bytes + packed_bytes + gradient_bytes + score_bytes + histogram_bytes + index_bytes;
    MemoryEstimate {
        binned_bytes,
        packed_bytes,
        gradient_bytes,
        score_bytes,
        histogram_bytes,
        index_bytes,
        total_bytes,
    }
}

/// Byte-level breakdown of a *serving* deployment: the resident
/// compiled ensemble plus one in-flight batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingEstimate {
    /// SoA node arrays (feature, threshold, left, right — 16 B/node).
    pub node_bytes: usize,
    /// Concatenated `num_leaves × d` leaf-value vectors.
    pub leaf_bytes: usize,
    /// Base scores plus per-tree root markers.
    pub base_bytes: usize,
    /// One max-size batch: feature rows in, score matrix out.
    pub batch_bytes: usize,
    /// Sum of the above.
    pub total_bytes: usize,
}

impl ServingEstimate {
    /// Bytes that stay resident between batches (everything except the
    /// in-flight batch buffers). Matches
    /// `crate::serve::DeviceEnsemble::resident_bytes` exactly.
    pub fn resident_bytes(&self) -> usize {
        self.node_bytes + self.leaf_bytes + self.base_bytes
    }

    /// Human-readable size.
    pub fn total_human(&self) -> String {
        human(self.total_bytes)
    }
}

/// Estimate the serving footprint of a compiled ensemble with `nodes`
/// total nodes, `leaf_values` total leaf-value elements and `trees`
/// trees over `d` outputs, serving `m`-feature rows in batches of up to
/// `max_batch`.
pub fn estimate_serving_bytes(
    nodes: usize,
    leaf_values: usize,
    trees: usize,
    d: usize,
    m: usize,
    max_batch: usize,
) -> ServingEstimate {
    let node_bytes = nodes * 16;
    let leaf_bytes = leaf_values * 4;
    let base_bytes = d * 4 + trees * 4;
    let batch_bytes = max_batch * (m + d) * 4;
    ServingEstimate {
        node_bytes,
        leaf_bytes,
        base_bytes,
        batch_bytes,
        total_bytes: node_bytes + leaf_bytes + base_bytes + batch_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(bins: usize) -> TrainConfig {
        TrainConfig {
            max_bins: bins,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn components_sum_to_total() {
        let e = estimate_training_bytes(10_000, 100, 10, &cfg(256));
        assert_eq!(
            e.total_bytes,
            e.binned_bytes
                + e.packed_bytes
                + e.gradient_bytes
                + e.score_bytes
                + e.histogram_bytes
                + e.index_bytes
        );
    }

    #[test]
    fn histograms_scale_with_outputs_the_papers_concern() {
        let small = estimate_training_bytes(10_000, 100, 10, &cfg(256));
        let large = estimate_training_bytes(10_000, 100, 100, &cfg(256));
        assert!(large.histogram_bytes >= small.histogram_bytes * 9);
    }

    #[test]
    fn quantized_gradients_halve_gradient_storage() {
        let mut c = cfg(256);
        let full = estimate_training_bytes(10_000, 50, 20, &c);
        c.hist.quantized_gradients = true;
        let quant = estimate_training_bytes(10_000, 50, 20, &c);
        assert_eq!(quant.gradient_bytes * 2, full.gradient_bytes);
    }

    #[test]
    fn subtraction_multiplies_histogram_residency() {
        let mut c = cfg(64);
        c.max_depth = 7;
        let plain = estimate_training_bytes(5_000, 50, 10, &c);
        c.hist.subtraction = true;
        let sub = estimate_training_bytes(5_000, 50, 10, &c);
        assert!(sub.histogram_bytes > plain.histogram_bytes * 32);
    }

    #[test]
    fn paper_scale_delicious_histograms_are_gigabytes() {
        // Delicious at full shape: 500 features × 256 bins × 983 outputs
        // — the "magnitude larger than GBDT-SO" claim of §5.
        let e = estimate_training_bytes(16_105, 500, 983, &cfg(256));
        assert!(
            e.histogram_bytes > 1 << 30,
            "histogram {} should exceed 1 GiB",
            human(e.histogram_bytes)
        );
        // And it does NOT fit subtraction mode on a 24 GB card.
        let mut c = cfg(256);
        c.hist.subtraction = true;
        let e2 = estimate_training_bytes(16_105, 500, 983, &c);
        assert!(!e2.fits(24 * (1 << 30)));
    }

    #[test]
    fn small_config_fits_a_4090() {
        let e = estimate_training_bytes(50_000, 200, 10, &cfg(256));
        assert!(e.fits(24 * (1 << 30)), "footprint {}", e.total_human());
    }

    #[test]
    fn pool_reuses_released_buffers() {
        let mut pool = HistogramPool::new(4, 3, 16);
        let a = pool.acquire();
        let b = pool.acquire();
        assert_eq!(pool.allocated(), 2);
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.available(), 2);
        let _c = pool.acquire();
        let _d = pool.acquire();
        // Nothing new allocated: both came from the free list.
        assert_eq!(pool.allocated(), 2);
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn pool_buffers_have_requested_shape() {
        let mut pool = HistogramPool::new(5, 2, 8);
        let h = pool.acquire();
        assert_eq!((h.num_features, h.d, h.bins), (5, 2, 8));
        assert_eq!(h.g.len(), 5 * 2 * 8);
        pool.release(h);
        assert!(pool.bytes() > 0);
    }

    #[test]
    fn pool_ensure_shape_drops_mismatched_cache() {
        let mut pool = HistogramPool::new(4, 2, 8);
        let h = pool.acquire();
        pool.release(h);
        pool.ensure_shape(4, 2, 8); // no-op
        assert_eq!(pool.available(), 1);
        pool.ensure_shape(6, 2, 8); // shape change drops the cache
        assert_eq!(pool.available(), 0);
        let h = pool.acquire();
        assert_eq!(h.num_features, 6);
    }

    #[test]
    fn serving_estimate_components_sum() {
        let e = estimate_serving_bytes(1000, 5000, 20, 10, 50, 256);
        assert_eq!(e.node_bytes, 16_000);
        assert_eq!(e.leaf_bytes, 20_000);
        assert_eq!(e.base_bytes, 10 * 4 + 20 * 4);
        assert_eq!(e.batch_bytes, 256 * 60 * 4);
        assert_eq!(
            e.total_bytes,
            e.node_bytes + e.leaf_bytes + e.base_bytes + e.batch_bytes
        );
        assert_eq!(
            e.resident_bytes(),
            e.node_bytes + e.leaf_bytes + e.base_bytes
        );
        assert!(!e.total_human().is_empty());
    }

    #[test]
    fn human_units() {
        assert_eq!(human(512), "512 B");
        assert_eq!(human(2048), "2.00 KiB");
        assert_eq!(human(3 * 1024 * 1024), "3.00 MiB");
        assert!(human(5 * 1024 * 1024 * 1024).contains("GiB"));
    }
}
