//! User-defined losses from closures — the paper's §3.1.1 flexibility
//! promise ("GBDT-MO is designed to accommodate user-defined loss
//! functions") as a first-class API.

use super::MultiOutputLoss;

/// Per-instance derivative function: fills `g` and `h` (length `d`)
/// from raw scores and targets (length `d`).
pub type GradHessFn = dyn Fn(&[f32], &[f32], &mut [f32], &mut [f32]) + Send + Sync;
/// Per-instance loss value.
pub type LossFn = dyn Fn(&[f32], &[f32]) -> f64 + Send + Sync;

/// A loss assembled from user closures.
pub struct CustomLoss {
    name: &'static str,
    grad_hess: Box<GradHessFn>,
    loss: Box<LossFn>,
    flops_per_output: f64,
}

impl CustomLoss {
    /// Build a custom loss. `flops_per_output` feeds the gradient
    /// kernel's cost model (use ~4 for polynomial losses, ~15 for
    /// exp-heavy ones).
    pub fn new(
        name: &'static str,
        grad_hess: impl Fn(&[f32], &[f32], &mut [f32], &mut [f32]) + Send + Sync + 'static,
        loss: impl Fn(&[f32], &[f32]) -> f64 + Send + Sync + 'static,
        flops_per_output: f64,
    ) -> Self {
        CustomLoss {
            name,
            grad_hess: Box::new(grad_hess),
            loss: Box::new(loss),
            flops_per_output,
        }
    }
}

impl std::fmt::Debug for CustomLoss {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CustomLoss")
            .field("name", &self.name)
            .finish()
    }
}

impl MultiOutputLoss for CustomLoss {
    fn name(&self) -> &'static str {
        self.name
    }

    fn grad_hess_row(&self, scores: &[f32], targets: &[f32], g: &mut [f32], h: &mut [f32]) {
        (self.grad_hess)(scores, targets, g, h);
    }

    fn loss_row(&self, scores: &[f32], targets: &[f32]) -> f64 {
        (self.loss)(scores, targets)
    }

    fn transform_row(&self, _scores: &mut [f32]) {}

    fn flops_per_output(&self) -> f64 {
        self.flops_per_output
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An asymmetric (quantile-flavoured) squared loss as a user would
    /// write it: under-prediction penalized 3× harder.
    fn asymmetric() -> CustomLoss {
        CustomLoss::new(
            "asymmetric-mse",
            |scores, targets, g, h| {
                for k in 0..scores.len() {
                    let r = scores[k] - targets[k];
                    let w = if r < 0.0 { 3.0 } else { 1.0 };
                    g[k] = 2.0 * w * r;
                    h[k] = 2.0 * w;
                }
            },
            |scores, targets| {
                scores
                    .iter()
                    .zip(targets)
                    .map(|(&s, &t)| {
                        let r = (s - t) as f64;
                        let w = if r < 0.0 { 3.0 } else { 1.0 };
                        w * r * r
                    })
                    .sum()
            },
            6.0,
        )
    }

    #[test]
    fn closures_are_invoked() {
        let loss = asymmetric();
        assert_eq!(loss.name(), "asymmetric-mse");
        let mut g = [0.0f32; 2];
        let mut h = [0.0f32; 2];
        loss.grad_hess_row(&[1.0, -1.0], &[0.0, 0.0], &mut g, &mut h);
        assert_eq!(g, [2.0, -6.0]); // over-prediction 1×, under 3×
        assert_eq!(h, [2.0, 6.0]);
        assert_eq!(loss.loss_row(&[1.0, -1.0], &[0.0, 0.0]), 1.0 + 3.0);
    }

    #[test]
    fn trains_end_to_end_and_biases_upward() {
        use crate::trainer::GpuTrainer;
        use gbdt_data::synth::{make_regression, RegressionSpec};
        use gpusim::Device;

        let ds = make_regression(&RegressionSpec {
            instances: 600,
            features: 8,
            outputs: 2,
            informative: 6,
            noise: 0.5,
            seed: 77,
            ..Default::default()
        });
        let cfg = crate::config::TrainConfig {
            num_trees: 10,
            max_depth: 4,
            max_bins: 32,
            min_instances: 5,
            learning_rate: 0.5,
            ..Default::default()
        };
        let sym = GpuTrainer::new(Device::rtx4090(), cfg.clone()).fit(&ds);
        let asym = GpuTrainer::new(Device::rtx4090(), cfg)
            .fit_with_loss(&ds, &asymmetric())
            .model;
        // The asymmetric penalty pushes predictions upward on average.
        let mean = |m: &crate::model::Model| -> f64 {
            let p = m.predict(ds.features());
            p.iter().map(|&v| v as f64).sum::<f64>() / p.len() as f64
        };
        assert!(
            mean(&asym) > mean(&sym) + 1e-3,
            "asymmetric {} should sit above symmetric {}",
            mean(&asym),
            mean(&sym)
        );
    }
}
