//! Mean squared error — the paper's demonstration loss (§3.1.1):
//! `g_i = 2(ŷ_i − y_i)`, `h_i = 2`.

use super::MultiOutputLoss;

/// Squared-error loss, summed over outputs.
#[derive(Debug, Clone, Copy, Default)]
pub struct MseLoss;

impl MultiOutputLoss for MseLoss {
    fn name(&self) -> &'static str {
        "mse"
    }

    fn grad_hess_row(&self, scores: &[f32], targets: &[f32], g: &mut [f32], h: &mut [f32]) {
        for k in 0..scores.len() {
            g[k] = 2.0 * (scores[k] - targets[k]);
            h[k] = 2.0;
        }
    }

    fn loss_row(&self, scores: &[f32], targets: &[f32]) -> f64 {
        scores
            .iter()
            .zip(targets)
            .map(|(&s, &t)| {
                let e = (s - t) as f64;
                e * e
            })
            .sum()
    }

    fn transform_row(&self, _scores: &mut [f32]) {}

    fn flops_per_output(&self) -> f64 {
        4.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_papers_formulas() {
        let mut g = [0.0f32; 2];
        let mut h = [0.0f32; 2];
        MseLoss.grad_hess_row(&[3.0, -1.0], &[1.0, -1.0], &mut g, &mut h);
        assert_eq!(g, [4.0, 0.0]); // 2(ŷ−y)
        assert_eq!(h, [2.0, 2.0]);
    }

    #[test]
    fn loss_is_sum_of_squares() {
        assert_eq!(MseLoss.loss_row(&[1.0, 2.0], &[0.0, 0.0]), 5.0);
        assert_eq!(MseLoss.loss_row(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn transform_is_identity() {
        let mut s = [0.5f32, -2.0];
        MseLoss.transform_row(&mut s);
        assert_eq!(s, [0.5, -2.0]);
    }
}
