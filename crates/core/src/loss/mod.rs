//! Multi-output loss functions.
//!
//! The paper (§2.2) derives training from a second-order Taylor
//! expansion of an arbitrary per-instance loss `l(y, ŷ)` with diagonal
//! Hessian approximation, so a loss only needs to supply per-output
//! first derivatives `g` and second derivatives `h`. The system is
//! loss-pluggable (§3.1.1 "designed to accommodate user-defined loss
//! functions"); the three built-ins cover the paper's task types:
//!
//! | task            | loss                          | g, h |
//! |-----------------|-------------------------------|------|
//! | multiregression | [`MseLoss`] (paper's demo)    | `g=2(ŷ−y)`, `h=2` |
//! | multiclass      | [`SoftmaxLoss`]               | `g=p_k−y_k`, `h=p_k(1−p_k)` |
//! | multilabel      | [`SigmoidLoss`] (per-label BCE)| `g=σ(ŷ)−y`, `h=σ(1−σ)` |

mod custom;
mod huber;
mod mse;
mod sigmoid;
mod softmax;

pub use custom::{CustomLoss, GradHessFn, LossFn};
pub use huber::HuberLoss;
pub use mse::MseLoss;
pub use sigmoid::SigmoidLoss;
pub use softmax::SoftmaxLoss;

use gbdt_data::Task;

/// A differentiable multi-output loss with diagonal Hessian.
pub trait MultiOutputLoss: Send + Sync {
    /// Human-readable name.
    fn name(&self) -> &'static str;

    /// Fill `g` and `h` (each `d` long) for one instance from its raw
    /// scores and targets (each `d` long).
    fn grad_hess_row(&self, scores: &[f32], targets: &[f32], g: &mut [f32], h: &mut [f32]);

    /// Loss value of one instance (for monitoring/tests).
    fn loss_row(&self, scores: &[f32], targets: &[f32]) -> f64;

    /// Map raw scores to the prediction space (probabilities for
    /// classification losses; identity for regression).
    fn transform_row(&self, scores: &mut [f32]);

    /// Approximate arithmetic ops per output for the cost model.
    fn flops_per_output(&self) -> f64;
}

/// The default loss for a task type (paper Table 1's three task kinds).
pub fn loss_for_task(task: Task) -> Box<dyn MultiOutputLoss> {
    match task {
        Task::MultiRegression => Box::new(MseLoss),
        Task::MultiClass => Box::new(SoftmaxLoss),
        Task::MultiLabel => Box::new(SigmoidLoss),
    }
}

/// Mean loss over a whole score/target matrix (`n × d`, row-major).
pub fn mean_loss(loss: &dyn MultiOutputLoss, scores: &[f32], targets: &[f32], d: usize) -> f64 {
    assert_eq!(scores.len(), targets.len());
    assert!(d > 0 && scores.len().is_multiple_of(d));
    let n = scores.len() / d;
    if n == 0 {
        return 0.0;
    }
    let total: f64 = (0..n)
        .map(|i| loss.loss_row(&scores[i * d..(i + 1) * d], &targets[i * d..(i + 1) * d]))
        .sum();
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central-difference check: g ≈ ∂l/∂ŷ_k for every built-in loss.
    fn check_gradients(loss: &dyn MultiOutputLoss, scores: &[f32], targets: &[f32]) {
        let d = scores.len();
        let mut g = vec![0.0f32; d];
        let mut h = vec![0.0f32; d];
        loss.grad_hess_row(scores, targets, &mut g, &mut h);
        let eps = 1e-3f32;
        for k in 0..d {
            let mut plus = scores.to_vec();
            plus[k] += eps;
            let mut minus = scores.to_vec();
            minus[k] -= eps;
            let num_g = (loss.loss_row(&plus, targets) - loss.loss_row(&minus, targets))
                / (2.0 * eps as f64);
            assert!(
                (num_g - g[k] as f64).abs() < 1e-2,
                "{}: output {k}: numeric {num_g} vs analytic {}",
                loss.name(),
                g[k]
            );
            assert!(h[k] > 0.0, "{}: h must be positive", loss.name());
        }
    }

    #[test]
    fn all_losses_pass_finite_difference() {
        let scores = [0.3f32, -0.7, 1.2];
        check_gradients(&MseLoss, &scores, &[1.0, 0.5, -0.2]);
        check_gradients(&SoftmaxLoss, &scores, &[0.0, 1.0, 0.0]);
        check_gradients(&SigmoidLoss, &scores, &[1.0, 0.0, 1.0]);
    }

    #[test]
    fn loss_for_task_picks_correctly() {
        assert_eq!(loss_for_task(Task::MultiRegression).name(), "mse");
        assert_eq!(loss_for_task(Task::MultiClass).name(), "softmax");
        assert_eq!(loss_for_task(Task::MultiLabel).name(), "sigmoid-bce");
    }

    #[test]
    fn mean_loss_averages() {
        let scores = [0.0f32, 0.0, 1.0, 1.0];
        let targets = [0.0f32, 0.0, 0.0, 0.0];
        // MSE rows: 0 and 2·(1+1)/? — loss_row for MSE sums (ŷ−y)² per output.
        let m = mean_loss(&MseLoss, &scores, &targets, 2);
        assert!((m - 1.0).abs() < 1e-9); // (0 + 2)/2
    }
}
