//! Pseudo-Huber loss — robust regression for multi-output targets.
//!
//! `l(r) = δ²(√(1 + (r/δ)²) − 1)` behaves quadratically near zero and
//! linearly in the tails, so outlier targets stop dominating the
//! gradients (a practical necessity the paper's MSE demo loss lacks).

use super::MultiOutputLoss;

/// Pseudo-Huber loss with transition scale `delta`.
#[derive(Debug, Clone, Copy)]
pub struct HuberLoss {
    /// Residual scale at which the loss transitions from quadratic to
    /// linear behaviour.
    pub delta: f32,
}

impl HuberLoss {
    /// Create with the given transition scale (must be positive).
    pub fn new(delta: f32) -> Self {
        assert!(delta > 0.0, "delta must be positive");
        HuberLoss { delta }
    }
}

impl Default for HuberLoss {
    fn default() -> Self {
        HuberLoss::new(1.0)
    }
}

impl MultiOutputLoss for HuberLoss {
    fn name(&self) -> &'static str {
        "pseudo-huber"
    }

    fn grad_hess_row(&self, scores: &[f32], targets: &[f32], g: &mut [f32], h: &mut [f32]) {
        let d2 = self.delta * self.delta;
        for k in 0..scores.len() {
            let r = scores[k] - targets[k];
            let s = (1.0 + r * r / d2).sqrt();
            g[k] = r / s;
            // h = (1 + (r/δ)²)^(-3/2), floored for leaf stability.
            h[k] = (1.0 / (s * s * s)).max(1e-4);
        }
    }

    fn loss_row(&self, scores: &[f32], targets: &[f32]) -> f64 {
        let d2 = (self.delta * self.delta) as f64;
        scores
            .iter()
            .zip(targets)
            .map(|(&s, &t)| {
                let r = (s - t) as f64;
                d2 * ((1.0 + r * r / d2).sqrt() - 1.0)
            })
            .sum()
    }

    fn transform_row(&self, _scores: &mut [f32]) {}

    fn flops_per_output(&self) -> f64 {
        10.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_near_zero_linear_in_tails() {
        let l = HuberLoss::new(1.0);
        // Near zero ≈ r²/2.
        let small = l.loss_row(&[0.1], &[0.0]);
        assert!((small - 0.005).abs() < 5e-4, "near-zero loss {small}");
        // Far out: slope ≈ δ (gradient saturates at ±δ… here ±1 scaled).
        let mut g = [0.0f32];
        let mut h = [0.0f32];
        l.grad_hess_row(&[100.0], &[0.0], &mut g, &mut h);
        assert!(g[0] > 0.95 && g[0] <= 1.0, "tail gradient {}", g[0]);
        l.grad_hess_row(&[-100.0], &[0.0], &mut g, &mut h);
        assert!(g[0] < -0.95 && g[0] >= -1.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let l = HuberLoss::new(0.7);
        let scores = [0.5f32, -2.0, 10.0];
        let targets = [0.0f32, 0.0, 0.0];
        let mut g = [0.0f32; 3];
        let mut h = [0.0f32; 3];
        l.grad_hess_row(&scores, &targets, &mut g, &mut h);
        for k in 0..3 {
            let eps = 1e-3f32;
            let mut p = scores;
            p[k] += eps;
            let mut m = scores;
            m[k] -= eps;
            let num = (l.loss_row(&p, &targets) - l.loss_row(&m, &targets)) / (2.0 * eps as f64);
            assert!((num - g[k] as f64).abs() < 1e-2, "k={k}: {num} vs {}", g[k]);
            assert!(h[k] > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn rejects_nonpositive_delta() {
        let _ = HuberLoss::new(0.0);
    }
}
