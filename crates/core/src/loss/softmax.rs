//! Softmax cross-entropy for multiclass tasks: the leaf outputs are
//! per-class logits of a single tree ensemble (the GBDT-MO advantage of
//! Fig. 1 — one tree carries all classes).

use super::MultiOutputLoss;

/// Minimum Hessian value; keeps leaf denominators away from zero when a
/// class probability saturates.
const MIN_HESS: f32 = 1e-6;

/// Softmax + cross-entropy: `g_k = p_k − y_k`, `h_k = p_k (1 − p_k)`
/// with `p = softmax(ŷ)` and one-hot `y`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftmaxLoss;

/// Numerically stable in-place softmax.
fn softmax(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in row.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in row.iter_mut() {
        *v *= inv;
    }
}

impl MultiOutputLoss for SoftmaxLoss {
    fn name(&self) -> &'static str {
        "softmax"
    }

    fn grad_hess_row(&self, scores: &[f32], targets: &[f32], g: &mut [f32], h: &mut [f32]) {
        let mut p = scores.to_vec();
        softmax(&mut p);
        for k in 0..p.len() {
            g[k] = p[k] - targets[k];
            h[k] = (p[k] * (1.0 - p[k])).max(MIN_HESS);
        }
    }

    fn loss_row(&self, scores: &[f32], targets: &[f32]) -> f64 {
        let mut p = scores.to_vec();
        softmax(&mut p);
        -targets
            .iter()
            .zip(&p)
            .map(|(&t, &pk)| t as f64 * (pk.max(1e-12) as f64).ln())
            .sum::<f64>()
    }

    fn transform_row(&self, scores: &mut [f32]) {
        softmax(scores);
    }

    fn flops_per_output(&self) -> f64 {
        12.0 // exp + normalization + grad/hess arithmetic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_normalizes() {
        let mut row = [1.0f32, 2.0, 3.0];
        softmax(&mut row);
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(row[2] > row[1] && row[1] > row[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut a = [1000.0f32, 1001.0, 1002.0];
        softmax(&mut a);
        let mut b = [0.0f32, 1.0, 2.0];
        softmax(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
            assert!(x.is_finite());
        }
    }

    #[test]
    fn gradient_sums_to_zero_for_one_hot_targets() {
        // Σ_k g_k = Σ p_k − Σ y_k = 1 − 1 = 0.
        let mut g = [0.0f32; 3];
        let mut h = [0.0f32; 3];
        SoftmaxLoss.grad_hess_row(&[0.5, -1.0, 2.0], &[0.0, 1.0, 0.0], &mut g, &mut h);
        let sum: f32 = g.iter().sum();
        assert!(sum.abs() < 1e-6);
        assert!(h.iter().all(|&x| x >= MIN_HESS));
    }

    #[test]
    fn perfect_prediction_has_low_loss() {
        let confident = [10.0f32, -10.0, -10.0];
        let target = [1.0f32, 0.0, 0.0];
        assert!(SoftmaxLoss.loss_row(&confident, &target) < 1e-3);
        let wrong = [-10.0f32, 10.0, -10.0];
        assert!(SoftmaxLoss.loss_row(&wrong, &target) > 5.0);
    }

    #[test]
    fn transform_produces_probabilities() {
        let mut s = [0.0f32, 0.0];
        SoftmaxLoss.transform_row(&mut s);
        assert!((s[0] - 0.5).abs() < 1e-6);
    }
}
