//! Per-label sigmoid binary cross-entropy for multilabel tasks
//! (Delicious / NUS-WIDE in Table 1): each output is an independent
//! binary label sharing one tree structure.

use super::MultiOutputLoss;

/// Minimum Hessian value.
const MIN_HESS: f32 = 1e-6;

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Independent per-output logistic loss: `g = σ(ŷ) − y`,
/// `h = σ(ŷ)(1 − σ(ŷ))`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SigmoidLoss;

impl MultiOutputLoss for SigmoidLoss {
    fn name(&self) -> &'static str {
        "sigmoid-bce"
    }

    fn grad_hess_row(&self, scores: &[f32], targets: &[f32], g: &mut [f32], h: &mut [f32]) {
        for k in 0..scores.len() {
            let p = sigmoid(scores[k]);
            g[k] = p - targets[k];
            h[k] = (p * (1.0 - p)).max(MIN_HESS);
        }
    }

    fn loss_row(&self, scores: &[f32], targets: &[f32]) -> f64 {
        scores
            .iter()
            .zip(targets)
            .map(|(&s, &t)| {
                let p = sigmoid(s).clamp(1e-7, 1.0 - 1e-7) as f64;
                -(t as f64 * p.ln() + (1.0 - t as f64) * (1.0 - p).ln())
            })
            .sum()
    }

    fn transform_row(&self, scores: &mut [f32]) {
        for s in scores.iter_mut() {
            *s = sigmoid(*s);
        }
    }

    fn flops_per_output(&self) -> f64 {
        10.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_range_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(10.0) > 0.999);
        assert!(sigmoid(-10.0) < 0.001);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gradient_signs_point_toward_targets() {
        let mut g = [0.0f32; 2];
        let mut h = [0.0f32; 2];
        SigmoidLoss.grad_hess_row(&[0.0, 0.0], &[1.0, 0.0], &mut g, &mut h);
        assert!(g[0] < 0.0, "positive label pushes score up");
        assert!(g[1] > 0.0, "negative label pushes score down");
        assert!(h.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn loss_decreases_with_confidence_in_truth() {
        let t = [1.0f32];
        assert!(SigmoidLoss.loss_row(&[3.0], &t) < SigmoidLoss.loss_row(&[0.0], &t));
        assert!(SigmoidLoss.loss_row(&[0.0], &t) < SigmoidLoss.loss_row(&[-3.0], &t));
    }

    #[test]
    fn extreme_scores_stay_finite() {
        let l = SigmoidLoss.loss_row(&[100.0, -100.0], &[0.0, 1.0]);
        assert!(l.is_finite());
        let mut g = [0.0f32; 2];
        let mut h = [0.0f32; 2];
        SigmoidLoss.grad_hess_row(&[100.0, -100.0], &[0.0, 1.0], &mut g, &mut h);
        assert!(g.iter().all(|x| x.is_finite()));
        assert!(h.iter().all(|&x| x >= MIN_HESS));
    }

    #[test]
    fn transform_maps_to_probabilities() {
        let mut s = [0.0f32, 4.0];
        SigmoidLoss.transform_row(&mut s);
        assert!((s[0] - 0.5).abs() < 1e-6);
        assert!(s[1] > 0.9);
    }
}
