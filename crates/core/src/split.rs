//! Split-point selection (paper §2.3, §3.1.2–§3.1.3).
//!
//! From a node's histogram, every bin boundary of every feature is a
//! candidate split. Left-side gradient masses come from a segmented
//! prefix sum over the bins of each (feature, output) segment; the gain
//! of Eq. (3) sums per-output terms; a segmented argmax picks the best
//! threshold per feature and a global argmax the best feature.
//!
//! **Launch batching.** A naive implementation launches the scan/gain/
//! reduction kernels once per node; on deep trees the launch overhead
//! dominates. The paper's §3.1.3 instead treats every (node, feature)
//! pair as a segment of *one* level-wide reduction, mapped to blocks by
//! the adaptive `1 + #segments/#SMs × C` rule. [`LevelSplitCharges`]
//! models exactly that: per-node calls accumulate their work, and one
//! flush per level charges the three batched kernels.

use crate::hist::NodeHistogram;
use gpusim::cost::KernelCost;
use gpusim::primitives::reduce::segments_per_block;
use gpusim::{Device, Phase};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Parameters governing split acceptance.
#[derive(Debug, Clone, Copy)]
pub struct SplitParams {
    /// L2 regularization λ on leaf values.
    pub lambda: f64,
    /// Minimum gain γ for a split to be kept.
    pub min_gain: f64,
    /// Minimum instances per child.
    pub min_instances: usize,
    /// Adaptive segments-per-block constant `C` (§3.1.3).
    pub segments_c: f64,
}

/// A chosen split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SplitCandidate {
    /// Global feature ID.
    pub feature: u32,
    /// Threshold bin: instances with `bin ≤ bin` go left.
    pub bin: u8,
    /// Gain of Eq. (3).
    pub gain: f64,
    /// Instances routed left.
    pub left_count: u32,
    /// Instances routed right.
    pub right_count: u32,
    /// Per-output gradient sums of the left child.
    pub left_g: Vec<f64>,
    /// Per-output Hessian sums of the left child.
    pub left_h: Vec<f64>,
}

/// One output dimension's gain contribution (½ of Eq. (3)'s summand).
#[inline]
fn gain_term(gl: f64, hl: f64, gr: f64, hr: f64, lambda: f64) -> f64 {
    gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - (gl + gr) * (gl + gr) / (hl + hr + lambda)
}

/// The leaf objective reduction of splitting, summed over outputs.
pub fn split_gain(
    left_g: &[f64],
    left_h: &[f64],
    node_g: &[f64],
    node_h: &[f64],
    lambda: f64,
) -> f64 {
    let mut gain = 0.0;
    for k in 0..node_g.len() {
        let gl = left_g[k];
        let hl = left_h[k];
        gain += gain_term(gl, hl, node_g[k] - gl, node_h[k] - hl, lambda);
    }
    0.5 * gain
}

/// Accumulated split-evaluation work for one tree level, flushed as
/// three batched kernels (scan+gain, segmented argmax, global argmax).
#[derive(Debug, Default, Clone)]
pub struct LevelSplitCharges {
    scan_elems: f64,
    gain_candidates: f64,
    segments: f64,
    nodes: f64,
}

impl LevelSplitCharges {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    fn add(&mut self, mf: usize, d: usize, bins: usize) {
        self.scan_elems += (mf * d * bins) as f64;
        self.gain_candidates += (mf * bins) as f64;
        self.segments += mf as f64;
        self.nodes += 1.0;
    }

    /// Charge the level's batched kernels to `device` and reset.
    pub fn flush(&mut self, device: &Device, sm_count: u32, segments_c: f64) {
        if self.nodes == 0.0 {
            return;
        }
        // The adaptive segment mapping (§3.1.3): batching segments into
        // blocks shrinks the grid. A naive low-C mapping (one segment
        // per block) needs a grid far beyond the SM count, paying a
        // launch-equivalent dispatch round per full wave of blocks —
        // exactly the inefficiency the paper calls out "on
        // high-dimensional datasets due to kernel launch overhead".
        let spb = segments_per_block(self.segments as usize, sm_count, segments_c) as f64;
        let blocks = (self.segments / spb.max(1.0)).ceil();
        let waves = (blocks / sm_count as f64).ceil();
        device.charge_kernel(
            "split_scan_gain_level",
            Phase::SplitEval,
            &KernelCost {
                flops: self.scan_elems * 10.0,
                dram_bytes: self.scan_elems * 16.0 + self.gain_candidates * 8.0,
                launches: 1.0,
                ..Default::default()
            },
        );
        device.charge_kernel(
            "split_seg_argmax_level",
            Phase::SplitEval,
            &KernelCost {
                flops: self.gain_candidates,
                dram_bytes: self.gain_candidates * 8.0 + self.segments * 16.0,
                launches: waves.max(1.0),
                ..Default::default()
            },
        );
        device.charge_kernel(
            "split_global_argmax_level",
            Phase::SplitEval,
            &KernelCost {
                flops: self.segments,
                dram_bytes: self.segments * 16.0 + self.nodes * 32.0,
                launches: 1.0,
                ..Default::default()
            },
        );
        crate::sanitize::trace_split_level(
            device,
            self.segments as usize,
            self.gain_candidates as usize,
            self.nodes as usize,
        );
        *self = Self::default();
    }
}

/// Monotone-constraint context for one node: per-global-feature signs
/// (+1 non-decreasing, −1 non-increasing, 0 free) and the node's
/// per-output leaf-value bounds inherited from constrained ancestors.
#[derive(Debug, Clone, Copy)]
pub struct ConstraintState<'a> {
    /// Per global feature ID: +1 / −1 / 0.
    pub monotone: &'a [i8],
    /// Per output: admissible `[lower, upper]` leaf-value interval.
    pub bounds: &'a [(f64, f64)],
}

impl ConstraintState<'_> {
    /// Clamp a raw optimal leaf value for output `k` into this node's
    /// interval.
    #[inline]
    pub fn clamp(&self, k: usize, v: f64) -> f64 {
        let (lo, hi) = self.bounds[k];
        v.clamp(lo, hi)
    }
}

/// Does a candidate split on a `c`-constrained feature keep the leaf
/// ordering legal? Checks every output with values clamped into the
/// node's bounds (bound propagation makes the guarantee global).
fn constraint_ok(
    c: i8,
    gl: &[f64],
    hl: &[f64],
    node_g: &[f64],
    node_h: &[f64],
    lambda: f64,
    state: &ConstraintState<'_>,
) -> bool {
    for k in 0..node_g.len() {
        let vl = state.clamp(k, -(gl[k] / (hl[k] + lambda)));
        let vr = state.clamp(k, -((node_g[k] - gl[k]) / (node_h[k] - hl[k] + lambda)));
        if (c as f64) * (vr - vl) < 0.0 {
            return false;
        }
    }
    true
}

/// Pure (uncharged) best-split search over features `f_lo..f_hi` (local
/// indices into `features`/`hist`). Tie-breaking: the lowest feature
/// index, then the lowest bin.
#[allow(clippy::too_many_arguments)]
fn best_split_impl(
    hist: &NodeHistogram,
    features: &[u32],
    f_lo: usize,
    f_hi: usize,
    node_g: &[f64],
    node_h: &[f64],
    node_count: u32,
    params: &SplitParams,
    constraints: Option<&ConstraintState<'_>>,
) -> Option<SplitCandidate> {
    assert_eq!(
        features.len(),
        hist.num_features,
        "feature/histogram mismatch"
    );
    assert!(f_lo <= f_hi && f_hi <= features.len(), "bad feature range");
    let bins = hist.bins;
    let d = hist.d;
    let mf = f_hi - f_lo;
    if mf == 0 || node_count == 0 {
        return None;
    }
    let min_child = params.min_instances as u32;

    // Per-feature best: the segmented scan + gain + segmented argmax,
    // fused (parallel over feature segments).
    let per_feature: Vec<(usize, f64)> = (f_lo..f_hi)
        .into_par_iter()
        .map(|f_local| {
            let c = constraints
                .map(|s| s.monotone[features[f_local] as usize])
                .unwrap_or(0);
            let mut gl = vec![0.0f64; d];
            let mut hl = vec![0.0f64; d];
            let mut left_cnt = 0u32;
            let mut best = (0usize, f64::NEG_INFINITY);
            for b in 0..bins.saturating_sub(1) {
                left_cnt += hist.counts[hist.cnt_index(f_local, b)];
                for k in 0..d {
                    let at = hist.gh_index(f_local, k, b);
                    gl[k] += hist.g[at];
                    hl[k] += hist.h[at];
                }
                let right_cnt = node_count - left_cnt;
                if left_cnt < min_child || right_cnt < min_child {
                    continue;
                }
                if c != 0 {
                    let state = constraints.expect("c != 0 implies state");
                    if !constraint_ok(c, &gl, &hl, node_g, node_h, params.lambda, state) {
                        continue;
                    }
                }
                let gain = split_gain(&gl, &hl, node_g, node_h, params.lambda);
                if gain > best.1 {
                    best = (b, gain);
                }
            }
            best
        })
        .collect();

    // Global argmax across features (lowest index wins ties).
    let mut best_fi = 0usize;
    let mut best_gain = f64::NEG_INFINITY;
    for (i, &(_, g)) in per_feature.iter().enumerate() {
        if g > best_gain {
            best_gain = g;
            best_fi = i;
        }
    }
    if !best_gain.is_finite() || best_gain <= params.min_gain {
        return None;
    }
    let f_local = f_lo + best_fi;
    let best_bin = per_feature[best_fi].0;

    // Reconstruct the winning split's left-side sums.
    let mut left_g = vec![0.0f64; d];
    let mut left_h = vec![0.0f64; d];
    let mut left_count = 0u32;
    for b in 0..=best_bin {
        left_count += hist.counts[hist.cnt_index(f_local, b)];
        for k in 0..d {
            let at = hist.gh_index(f_local, k, b);
            left_g[k] += hist.g[at];
            left_h[k] += hist.h[at];
        }
    }
    Some(SplitCandidate {
        feature: features[f_local],
        bin: best_bin as u8,
        gain: best_gain,
        left_count,
        right_count: node_count - left_count,
        left_g,
        left_h,
    })
}

/// Best split over a feature range, charging `device` for this node's
/// own (unbatched) kernels. Multi-GPU devices use this per node; the
/// single-device grower prefers [`find_best_split_batched`].
#[allow(clippy::too_many_arguments)]
pub fn find_best_split_range(
    device: &Device,
    hist: &NodeHistogram,
    features: &[u32],
    f_lo: usize,
    f_hi: usize,
    node_g: &[f64],
    node_h: &[f64],
    node_count: u32,
    params: &SplitParams,
) -> Option<SplitCandidate> {
    let out = best_split_impl(
        hist, features, f_lo, f_hi, node_g, node_h, node_count, params, None,
    );
    let mut acc = LevelSplitCharges::new();
    acc.add(f_hi - f_lo, hist.d, hist.bins);
    acc.flush(device, device.model().params.sm_count, params.segments_c);
    out
}

/// Best split over the full feature range with per-node charging.
pub fn find_best_split(
    device: &Device,
    hist: &NodeHistogram,
    features: &[u32],
    node_g: &[f64],
    node_h: &[f64],
    node_count: u32,
    params: &SplitParams,
) -> Option<SplitCandidate> {
    find_best_split_range(
        device,
        hist,
        features,
        0,
        features.len(),
        node_g,
        node_h,
        node_count,
        params,
    )
}

/// Best split whose kernel work is accumulated into `charges` instead of
/// being charged immediately — call [`LevelSplitCharges::flush`] once
/// per level (paper §3.1.3's batched segmented reduction).
#[allow(clippy::too_many_arguments)]
pub fn find_best_split_batched(
    charges: &mut LevelSplitCharges,
    hist: &NodeHistogram,
    features: &[u32],
    node_g: &[f64],
    node_h: &[f64],
    node_count: u32,
    params: &SplitParams,
) -> Option<SplitCandidate> {
    find_best_split_constrained(
        charges, hist, features, node_g, node_h, node_count, params, None,
    )
}

/// [`find_best_split_batched`] with optional monotone constraints: a
/// candidate on a constrained feature is admissible only if its
/// (bound-clamped) child leaf values respect the required ordering on
/// every output.
#[allow(clippy::too_many_arguments)]
pub fn find_best_split_constrained(
    charges: &mut LevelSplitCharges,
    hist: &NodeHistogram,
    features: &[u32],
    node_g: &[f64],
    node_h: &[f64],
    node_count: u32,
    params: &SplitParams,
    constraints: Option<&ConstraintState<'_>>,
) -> Option<SplitCandidate> {
    charges.add(features.len(), hist.d, hist.bins);
    best_split_impl(
        hist,
        features,
        0,
        features.len(),
        node_g,
        node_h,
        node_count,
        params,
        constraints,
    )
}

/// Optimal leaf values `v*_k = −G_k / (H_k + λ)` (paper §2.2), scaled by
/// the learning rate. The output width follows the input sums, so the
/// same routine serves both the in-grow leaf assignment (at the
/// effective dimension of the gradients being grown — `k` during a
/// sketched round) and the full-`d` refit
/// ([`crate::sketch::refit_leaves_full_d`], SketchBoost's "retarget"
/// step) that replaces those k-dim leaves afterwards.
pub fn leaf_values(node_g: &[f64], node_h: &[f64], lambda: f64, learning_rate: f32) -> Vec<f32> {
    node_g
        .iter()
        .zip(node_h)
        .map(|(&g, &h)| (-(g / (h + lambda)) as f32) * learning_rate)
        .collect()
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default, clippy::needless_range_loop)]
mod tests {
    use super::*;

    fn params() -> SplitParams {
        SplitParams {
            lambda: 1.0,
            min_gain: 1e-9,
            min_instances: 1,
            segments_c: 4.0,
        }
    }

    /// Hand-built histogram: 1 feature, 4 bins, d=1. Bins 0–1 have
    /// negative gradients, bins 2–3 positive → best split after bin 1.
    fn polarized_hist() -> NodeHistogram {
        let mut h = NodeHistogram::new(1, 1, 4);
        let g = [-5.0, -5.0, 5.0, 5.0];
        for b in 0..4 {
            {
                let at = h.gh_index(0, 0, b);
                h.g[at] = g[b];
            }
            {
                let at = h.gh_index(0, 0, b);
                h.h[at] = 2.0;
            }
            {
                let at = h.cnt_index(0, b);
                h.counts[at] = 10;
            }
        }
        h
    }

    #[test]
    fn finds_the_obvious_split() {
        let device = Device::rtx4090();
        let hist = polarized_hist();
        let s = find_best_split(&device, &hist, &[7], &[0.0], &[8.0], 40, &params())
            .expect("split must exist");
        assert_eq!(s.feature, 7);
        assert_eq!(s.bin, 1);
        assert_eq!(s.left_count, 20);
        assert_eq!(s.right_count, 20);
        assert_eq!(s.left_g, vec![-10.0]);
        assert!(s.gain > 0.0);
        assert!(device.summary().by_phase.contains_key(&Phase::SplitEval));
    }

    #[test]
    fn gain_matches_equation_3() {
        // Hand-check Eq. (3) for the polarized split: GL=-10, GR=10,
        // HL=HR=4, λ=1 → ½(100/5 + 100/5 − 0/9) = 20.
        let g = split_gain(&[-10.0], &[4.0], &[0.0], &[8.0], 1.0);
        assert!((g - 20.0).abs() < 1e-12, "gain {g}");
    }

    #[test]
    fn min_instances_filters_candidates() {
        let device = Device::rtx4090();
        let hist = polarized_hist();
        let mut p = params();
        p.min_instances = 25; // no boundary leaves ≥25 on both sides
        let s = find_best_split(&device, &hist, &[0], &[0.0], &[8.0], 40, &p);
        assert!(s.is_none());
    }

    #[test]
    fn min_gain_rejects_weak_splits() {
        let device = Device::rtx4090();
        // Uniform gradients: no split has positive gain.
        let mut hist = NodeHistogram::new(1, 1, 4);
        for b in 0..4 {
            {
                let at = hist.gh_index(0, 0, b);
                hist.g[at] = 1.0;
            }
            {
                let at = hist.gh_index(0, 0, b);
                hist.h[at] = 2.0;
            }
            hist.counts[b] = 5;
        }
        let s = find_best_split(&device, &hist, &[0], &[4.0], &[8.0], 20, &params());
        assert!(s.is_none(), "uniform node must not split: {s:?}");
    }

    #[test]
    fn multi_output_gain_sums_over_outputs() {
        let device = Device::rtx4090();
        // d=2 where each output alone gives gain 20 → total 40.
        let mut hist = NodeHistogram::new(1, 2, 4);
        for k in 0..2 {
            let g = [-5.0, -5.0, 5.0, 5.0];
            for b in 0..4 {
                {
                    let at = hist.gh_index(0, k, b);
                    hist.g[at] = g[b];
                }
                {
                    let at = hist.gh_index(0, k, b);
                    hist.h[at] = 2.0;
                }
            }
        }
        for b in 0..4 {
            hist.counts[b] = 10;
        }
        let s = find_best_split(
            &device,
            &hist,
            &[0],
            &[0.0, 0.0],
            &[8.0, 8.0],
            40,
            &params(),
        )
        .unwrap();
        assert!((s.gain - 40.0).abs() < 1e-9, "gain {}", s.gain);
    }

    #[test]
    fn range_restriction_is_respected() {
        let device = Device::rtx4090();
        // Two features; only feature 1 carries signal. Restricting the
        // range to feature 0 must find nothing.
        let mut hist = NodeHistogram::new(2, 1, 4);
        let g = [-5.0, -5.0, 5.0, 5.0];
        for b in 0..4 {
            {
                let at = hist.gh_index(1, 0, b);
                hist.g[at] = g[b];
            }
            {
                let at = hist.gh_index(1, 0, b);
                hist.h[at] = 2.0;
            }
            {
                let at = hist.cnt_index(0, b);
                hist.counts[at] = 10;
            }
            {
                let at = hist.cnt_index(1, b);
                hist.counts[at] = 10;
            }
            {
                let at = hist.gh_index(0, 0, b);
                hist.h[at] = 2.0;
            }
        }
        let p = params();
        let none = find_best_split_range(&device, &hist, &[4, 9], 0, 1, &[0.0], &[8.0], 40, &p);
        assert!(none.is_none());
        let some = find_best_split_range(&device, &hist, &[4, 9], 1, 2, &[0.0], &[8.0], 40, &p)
            .expect("feature 1 must split");
        assert_eq!(some.feature, 9);
    }

    #[test]
    fn batched_path_matches_per_node_path() {
        let device = Device::rtx4090();
        let hist = polarized_hist();
        let per_node =
            find_best_split(&device, &hist, &[7], &[0.0], &[8.0], 40, &params()).unwrap();
        let mut charges = LevelSplitCharges::new();
        let batched =
            find_best_split_batched(&mut charges, &hist, &[7], &[0.0], &[8.0], 40, &params())
                .unwrap();
        assert_eq!(per_node.feature, batched.feature);
        assert_eq!(per_node.bin, batched.bin);
        assert_eq!(per_node.gain, batched.gain);
        // Flushing once charges exactly three kernels.
        let d2 = Device::rtx4090();
        charges.flush(&d2, d2.model().params.sm_count, 4.0);
        assert_eq!(d2.summary().kernel_count, 3);
    }

    #[test]
    fn batched_charging_amortizes_launches() {
        // 16 nodes charged per-node vs batched: batched must be cheaper.
        let hist = polarized_hist();
        let d_per = Device::rtx4090();
        for _ in 0..16 {
            let _ = find_best_split(&d_per, &hist, &[0], &[0.0], &[8.0], 40, &params());
        }
        let d_batch = Device::rtx4090();
        let mut charges = LevelSplitCharges::new();
        for _ in 0..16 {
            let _ =
                find_best_split_batched(&mut charges, &hist, &[0], &[0.0], &[8.0], 40, &params());
        }
        charges.flush(&d_batch, d_batch.model().params.sm_count, 4.0);
        assert!(
            d_batch.now_ns() < d_per.now_ns() / 4.0,
            "batched {} vs per-node {}",
            d_batch.now_ns(),
            d_per.now_ns()
        );
    }

    #[test]
    fn flush_on_empty_accumulator_is_a_noop() {
        let device = Device::rtx4090();
        let mut charges = LevelSplitCharges::new();
        charges.flush(&device, 128, 4.0);
        assert_eq!(device.now_ns(), 0.0);
    }

    #[test]
    fn leaf_values_match_closed_form() {
        let v = leaf_values(&[10.0, -4.0], &[4.0, 1.0], 1.0, 1.0);
        assert_eq!(v, vec![-2.0, 2.0]);
        let v = leaf_values(&[10.0], &[4.0], 1.0, 0.5);
        assert_eq!(v, vec![-1.0]);
    }

    #[test]
    fn empty_node_yields_no_split() {
        let device = Device::rtx4090();
        let hist = NodeHistogram::new(1, 1, 4);
        assert!(find_best_split(&device, &hist, &[0], &[0.0], &[0.0], 0, &params()).is_none());
    }
}
