//! Level-wise tree growth (paper Algorithm 1).
//!
//! The frontier of open nodes is processed one depth level at a time in
//! a **two-stage pass**:
//!
//! 1. **Histogram build** — every open node's histogram is produced:
//!    fresh builds accumulate from instance data (in parallel across
//!    nodes when [`TrainConfig::parallel_level_hist`] is set — they are
//!    mutually independent), then subtraction-inherited nodes derive
//!    `parent − sibling` from the parent buffer that survived the
//!    previous level. Level-batched buffers are only used when the
//!    subtraction trick or real host parallelism calls for them;
//!    otherwise stage 1 is skipped and each histogram is built lazily
//!    in stage 2 over a single hot pooled buffer (better cache reuse
//!    single-threaded).
//! 2. **Split selection** — nodes are visited strictly in node-index
//!    order: device charges are issued, the best split is found via
//!    segmented reductions, and instances are partitioned into the
//!    children.
//!
//! Because stage 2 is serial and consumes histograms in node-index
//! order, the grown tree and the simulated timeline are bit-identical
//! at any host thread count and with the parallel build disabled.
//! Histogram buffers come from a [`HistogramPool`] reused across
//! levels and trees; on the subtraction path the parent's buffer stays
//! alive (owned by the level loop) until both children have resolved.

use crate::config::{HistogramMethod, TrainConfig};
use crate::grad::Gradients;
use crate::hist::{
    accumulate_only, charge_method, charge_method_on, resolve_method, HistContext, NodeHistogram,
};
use crate::memory::HistogramPool;
use crate::split::{
    find_best_split_constrained, leaf_values, ConstraintState, LevelSplitCharges, SplitParams,
};
use crate::tree::Tree;
use gbdt_data::BinnedDataset;
use gpusim::cost::KernelCost;
use gpusim::{Device, Event, Phase};
use rayon::prelude::*;
use std::collections::BTreeMap;

/// Charging policy for one level's per-node fresh-histogram kernels.
///
/// At `streams = 1` every charge goes to the default stream, which
/// reproduces the serial clock bit for bit. With more streams, each
/// fresh build issues on the currently least-loaded worker stream
/// (`1..=streams`): a level's node histograms are mutually independent,
/// so sibling builds overlap on the simulated timeline up to the
/// device's occupancy-derived concurrency cap. Every worker stream is
/// fenced to the level-start clock of the default stream before its
/// first charge, and [`HistCharges::flush`] joins the default stream to
/// every used worker's completion fence — so split evaluation and the
/// partition kernel (default stream) start only after the last build.
///
/// Charges still *issue* in node-index order regardless of stream
/// count: the ledger's record list, the fault injector's charge-index
/// semantics, and the profiler's aggregates are identical to the serial
/// schedule. Only start timestamps and the makespan move.
struct HistCharges {
    streams: usize,
    /// Default-stream clock at level start (before this level's derive
    /// subtractions), which is what fresh builds actually depend on.
    fence: Event,
    /// Worker streams fenced (and charged) since construction.
    used: Vec<bool>,
}

impl HistCharges {
    fn new(device: &Device, streams: usize) -> Self {
        let streams = streams.max(1);
        HistCharges {
            streams,
            fence: device.record_event(0),
            used: vec![false; streams + 1],
        }
    }

    fn charge(&mut self, ctx: &HistContext<'_>, idx: &[u32], method: HistogramMethod) {
        if self.streams == 1 {
            charge_method(ctx, idx, method);
            return;
        }
        // Least-loaded worker stream first (greedy LPT, deterministic:
        // stream clocks are simulated and ties go to the lowest id).
        let mut best = 1;
        let mut best_now = f64::INFINITY;
        for s in 1..=self.streams {
            let now = ctx.device.stream_now(s);
            if now < best_now {
                best_now = now;
                best = s;
            }
        }
        if !self.used[best] {
            ctx.device.wait_event(best, self.fence);
            self.used[best] = true;
        }
        charge_method_on(ctx, idx, method, best);
    }

    /// End of level: the default stream waits for every used worker.
    fn flush(&mut self, device: &Device) {
        for (s, used) in self.used.iter_mut().enumerate() {
            if *used {
                let done = device.record_event(s);
                device.wait_event(0, done);
                *used = false;
            }
        }
    }
}

/// Stable in-order partition of `idx` by `flags` (`true` → left). The
/// functional core of the scan-based partition kernel; its cost is
/// charged level-batched by the grower.
pub fn partition_stable(idx: &[u32], flags: &[bool]) -> (Vec<u32>, Vec<u32>) {
    debug_assert_eq!(idx.len(), flags.len());
    let mut left = Vec::with_capacity(idx.len());
    let mut right = Vec::with_capacity(idx.len());
    for (&i, &f) in idx.iter().zip(flags) {
        if f {
            left.push(i);
        } else {
            right.push(i);
        }
    }
    (left, right)
}

/// Where a frontier node's histogram comes from in the level's build
/// stage.
#[derive(Debug, Clone, Copy)]
enum HistSource {
    /// Accumulate from instance data (fresh build; charged as a
    /// histogram kernel).
    Build,
    /// Derive as `parents[parent] − sibling's histogram` — the
    /// subtraction trick. The sibling (at frontier index `sibling`,
    /// always the smaller child) builds fresh in the same level; the
    /// parent's buffer survived the previous level for exactly this.
    Derive { parent: usize, sibling: usize },
}

/// One open node during growth.
struct NodeWork {
    /// Index of this node in the tree.
    tree_node: usize,
    /// Instances resident in the node.
    instances: Vec<u32>,
    /// Per-output gradient totals.
    g: Vec<f64>,
    /// Per-output Hessian totals.
    h: Vec<f64>,
    /// How this node's histogram is produced.
    source: HistSource,
    /// Per-output leaf-value bounds from constrained ancestors (only
    /// allocated when monotone constraints are active).
    bounds: Option<Vec<(f64, f64)>>,
}

/// Clamp raw leaf values into a node's monotonicity bounds (before the
/// learning-rate scaling that `leaf_values` applies uniformly).
fn clamp_leaf(values: &mut [f32], bounds: &[(f64, f64)], learning_rate: f32) {
    for (v, &(lo, hi)) in values.iter_mut().zip(bounds) {
        let unscaled = (*v / learning_rate) as f64;
        *v = (unscaled.clamp(lo, hi) as f32) * learning_rate;
    }
}

/// Result of growing one tree.
pub struct GrowResult {
    /// The finished tree.
    pub tree: Tree,
    /// `(instances, leaf value)` per leaf — input to the incremental
    /// score update.
    pub leaf_assignments: Vec<(Vec<u32>, Vec<f32>)>,
    /// Tree-node index of each entry in `leaf_assignments` (lets
    /// post-processing — e.g. SketchBoost's full-dimensional leaf
    /// refit — rewrite leaf values in place).
    pub leaf_nodes: Vec<usize>,
    /// How many nodes each histogram method handled (adaptive
    /// selection telemetry, reported by the ablation benches).
    pub methods_used: BTreeMap<HistogramMethod, usize>,
}

/// Grow one tree over `features` (global IDs) on `device`, rooting at
/// all instances.
pub fn grow_tree(
    device: &Device,
    data: &BinnedDataset,
    grads: &Gradients,
    config: &TrainConfig,
    features: &[u32],
) -> GrowResult {
    let root_idx: Vec<u32> = (0..grads.n as u32).collect();
    grow_tree_on(device, data, grads, config, features, root_idx)
}

/// Grow one tree rooted at an explicit instance subset (stochastic
/// gradient boosting's per-tree row sample). Allocates a private
/// [`HistogramPool`]; the trainer's tree loop uses
/// [`grow_tree_pooled`] to reuse buffers across trees.
pub fn grow_tree_on(
    device: &Device,
    data: &BinnedDataset,
    grads: &Gradients,
    config: &TrainConfig,
    features: &[u32],
    root_idx: Vec<u32>,
) -> GrowResult {
    let mut pool = HistogramPool::new(features.len(), grads.d, config.max_bins);
    grow_tree_pooled(device, data, grads, config, features, root_idx, &mut pool)
}

/// [`grow_tree_on`] with a caller-owned histogram-buffer pool, so
/// consecutive trees reuse the same multi-MB allocations.
///
/// The grower is deliberately sketch-agnostic: every histogram shape,
/// cost estimate, and leaf value is sized by `grads.d` — the width of
/// whatever gradient matrix it is handed. Under gradient sketching
/// ([`crate::sketch`]) the trainer passes an `n × k` sketch here (so
/// the whole structure search runs at effective dimension `k`) and then
/// overwrites the resulting leaves from the full-`d` gradients with
/// [`crate::sketch::refit_leaves_full_d`].
pub fn grow_tree_pooled(
    device: &Device,
    data: &BinnedDataset,
    grads: &Gradients,
    config: &TrainConfig,
    features: &[u32],
    root_idx: Vec<u32>,
    pool: &mut HistogramPool,
) -> GrowResult {
    let d = grads.d;
    pool.ensure_shape(features.len(), d, config.max_bins);
    let ctx = HistContext {
        device,
        data,
        grads,
        features,
        bins: config.max_bins,
        opts: config.hist,
    };
    let params = SplitParams {
        lambda: config.lambda,
        min_gain: config.min_gain,
        min_instances: config.min_instances,
        segments_c: config.segments_per_block_c,
    };

    let mut tree = Tree::new(d);
    let mut leaf_assignments: Vec<(Vec<u32>, Vec<f32>)> = Vec::new();
    let mut leaf_nodes: Vec<usize> = Vec::new();
    let mut methods_used: BTreeMap<HistogramMethod, usize> = BTreeMap::new();

    let constrained = !config.monotone_constraints.is_empty();
    if constrained {
        assert_eq!(
            config.monotone_constraints.len(),
            data.m(),
            "monotone_constraints must have one entry per feature"
        );
    }
    let (root_g, root_h) = grads.sums(&root_idx);
    let mut frontier = vec![NodeWork {
        tree_node: 0,
        instances: root_idx,
        g: root_g,
        h: root_h,
        source: HistSource::Build,
        bounds: constrained.then(|| vec![(f64::NEG_INFINITY, f64::INFINITY); d]),
    }];
    // Parent histograms surviving from the previous level so that
    // `HistSource::Derive` children can subtract against them.
    let mut parents: Vec<NodeHistogram> = Vec::new();

    for depth in 0..config.max_depth {
        // Per-level profiling scope nested under the trainer's round
        // scope (no-op when profiling is off; purely observational).
        let _level_scope = device.prof_scope("level", Some(depth as u64));
        let mut next = Vec::new();
        let mut next_parents: Vec<NodeHistogram> = Vec::new();
        // Split evaluation and partitioning are charged once per level
        // as batched kernels (paper §3.1.3) — per-node launches would
        // dominate at depth.
        let mut split_charges = LevelSplitCharges::new();
        let mut hist_charges = HistCharges::new(device, config.streams);
        let mut partition_elems = 0usize;

        // ---- stage 1: histogram build ------------------------------
        // Level-batched buffers are needed when subtraction derives
        // must see their sibling's and parent's buffers at once, and
        // they pay off when real host parallelism is available. With
        // neither, each histogram is instead built immediately before
        // its split is selected (in stage 2), keeping a single hot
        // buffer resident in cache — measurably faster single-threaded.
        // Either way every buffer comes from the pool and all device
        // charges are issued in stage 2's node-index order, so the tree
        // and the simulated timeline are identical across modes.
        let batch = config.hist.subtraction
            || (config.parallel_level_hist && rayon::current_num_threads() > 1);
        let mut hists: Vec<Option<NodeHistogram>> = frontier.iter().map(|_| None).collect();
        if batch {
            // Fresh builds of the level run over pooled buffers; they
            // are mutually independent, so they may run across host
            // threads. Nodes too small to split get no histogram.
            let mut jobs: Vec<(usize, NodeHistogram)> = Vec::new();
            for (i, work) in frontier.iter().enumerate() {
                if work.instances.len() < 2 * config.min_instances {
                    debug_assert!(
                        matches!(work.source, HistSource::Build),
                        "derive nodes are at least 2×min_instances by construction"
                    );
                    continue;
                }
                if matches!(work.source, HistSource::Build) {
                    jobs.push((i, pool.acquire()));
                }
            }
            {
                let build = |(i, buf): &mut (usize, NodeHistogram)| {
                    let w = &frontier[*i];
                    accumulate_only(&ctx, &w.instances, &w.g, &w.h, buf);
                };
                if config.parallel_level_hist && jobs.len() > 1 {
                    jobs.par_iter_mut().for_each(build);
                } else {
                    jobs.iter_mut().for_each(build);
                }
            }
            for (i, buf) in jobs {
                hists[i] = Some(buf);
            }

            // Subtraction-inherited nodes derive `parent − sibling`
            // (one streaming pass, charged per node); afterwards the
            // parent buffers return to the pool.
            for (i, work) in frontier.iter().enumerate() {
                let HistSource::Derive { parent, sibling } = work.source else {
                    continue;
                };
                let mut out = pool.acquire();
                let sib = hists[sibling]
                    .as_ref()
                    .expect("smaller sibling builds fresh in the same level");
                out.assign_difference(&parents[parent], sib);
                device.charge_kernel(
                    "hist_subtract",
                    Phase::Histogram,
                    &KernelCost::streaming(out.g.len() as f64 * 2.0, (out.g.len() * 3 * 8) as f64),
                );
                crate::sanitize::trace_subtract(device, out.g.len());
                hists[i] = Some(out);
            }
        }
        for p in parents.drain(..) {
            pool.release(p);
        }

        // ---- stage 2: split selection, node-index order ------------
        for (i, work) in std::mem::take(&mut frontier).into_iter().enumerate() {
            let NodeWork {
                tree_node,
                instances,
                g,
                h,
                source,
                bounds,
            } = work;

            let leaf_bounds = bounds.clone();
            let mut finalize_leaf = |tree: &mut Tree, instances: Vec<u32>, g: &[f64], h: &[f64]| {
                let mut v = leaf_values(g, h, config.lambda, config.learning_rate);
                if let Some(b) = &leaf_bounds {
                    clamp_leaf(&mut v, b, config.learning_rate);
                }
                crate::sanitize::trace_leaf_values(device, v.len());
                tree.set_leaf(tree_node, v.clone());
                leaf_assignments.push((instances, v));
                leaf_nodes.push(tree_node);
            };

            // Un-batched levels build the histogram right here, just
            // before it is consumed (same pooled buffer every node).
            let hist_slot = hists[i].take().or_else(|| {
                if !batch && instances.len() >= 2 * config.min_instances {
                    let mut buf = pool.acquire();
                    accumulate_only(&ctx, &instances, &g, &h, &mut buf);
                    Some(buf)
                } else {
                    None
                }
            });
            let Some(hist) = hist_slot else {
                // Too small to split (no histogram was built).
                finalize_leaf(&mut tree, instances, &g, &h);
                continue;
            };

            // Device charge for the fresh build, issued strictly in
            // node-index order so the stream-scheduling (LPT) outcome
            // is independent of how stage 1 was parallelized.
            if matches!(source, HistSource::Build) {
                let m = resolve_method(&ctx, instances.len());
                hist_charges.charge(&ctx, &instances, m);
                *methods_used.entry(m).or_insert(0) += 1;
            }

            let state = bounds.as_ref().map(|b| ConstraintState {
                monotone: &config.monotone_constraints,
                bounds: b,
            });
            let split = find_best_split_constrained(
                &mut split_charges,
                &hist,
                features,
                &g,
                &h,
                instances.len() as u32,
                &params,
                state.as_ref(),
            );
            let Some(split) = split else {
                pool.release(hist);
                finalize_leaf(&mut tree, instances, &g, &h);
                continue;
            };
            if let Some(tel) = device.telemetry() {
                // Observer only: the split decision above is final.
                tel.hist_observe("train.split_gain", split.gain);
            }

            // Partition instances by the winning condition (Algorithm 1
            // lines 16–17); the scan-based partition kernel for all of
            // the level's nodes is charged once below.
            let col = data.bins.col(split.feature as usize);
            let flags: Vec<bool> = instances
                .iter()
                .map(|&i| col[i as usize] <= split.bin)
                .collect();
            partition_elems += instances.len();
            crate::sanitize::trace_partition(device, &flags);
            let (left_idx, right_idx) = partition_stable(&instances, &flags);
            debug_assert_eq!(left_idx.len(), split.left_count as usize);
            debug_assert_eq!(right_idx.len(), split.right_count as usize);

            let threshold = data.cuts.threshold(split.feature as usize, split.bin);
            let (l, r) = tree.split_node(tree_node, split.feature, split.bin, threshold);

            let right_g: Vec<f64> = g.iter().zip(&split.left_g).map(|(a, b)| a - b).collect();
            let right_h: Vec<f64> = h.iter().zip(&split.left_h).map(|(a, b)| a - b).collect();

            // Monotone bound propagation: a constrained split fixes the
            // midpoint of the two (clamped) child values as the new
            // boundary between the children's admissible intervals.
            let (left_bounds, right_bounds) = if let Some(parent_bounds) = &bounds {
                let c = config.monotone_constraints[split.feature as usize];
                let mut lb = parent_bounds.clone();
                let mut rb = parent_bounds.clone();
                if c != 0 {
                    for k in 0..d {
                        let (lo, hi) = parent_bounds[k];
                        let vl =
                            (-(split.left_g[k] / (split.left_h[k] + config.lambda))).clamp(lo, hi);
                        let vr = (-(right_g[k] / (right_h[k] + config.lambda))).clamp(lo, hi);
                        let mid = 0.5 * (vl + vr);
                        if c > 0 {
                            lb[k].1 = lb[k].1.min(mid);
                            rb[k].0 = rb[k].0.max(mid);
                        } else {
                            lb[k].0 = lb[k].0.max(mid);
                            rb[k].1 = rb[k].1.min(mid);
                        }
                    }
                }
                (Some(lb), Some(rb))
            } else {
                (None, None)
            };

            // Histogram subtraction: plan to rebuild only the smaller
            // child next level; the larger then derives
            // `parent − smaller` from this node's buffer, which the
            // level loop keeps alive until both children resolve.
            let (mut left_source, mut right_source) = (HistSource::Build, HistSource::Build);
            let mut parent_survives = false;
            if config.hist.subtraction && depth + 1 < config.max_depth {
                let smaller_is_left = left_idx.len() <= right_idx.len();
                let smaller_len = left_idx.len().min(right_idx.len());
                if smaller_len >= 2 * config.min_instances {
                    let parent = next_parents.len();
                    let left_pos = next.len();
                    let right_pos = next.len() + 1;
                    if smaller_is_left {
                        right_source = HistSource::Derive {
                            parent,
                            sibling: left_pos,
                        };
                    } else {
                        left_source = HistSource::Derive {
                            parent,
                            sibling: right_pos,
                        };
                    }
                    parent_survives = true;
                }
            }
            if parent_survives {
                next_parents.push(hist);
            } else {
                pool.release(hist);
            }

            next.push(NodeWork {
                tree_node: l,
                instances: left_idx,
                g: split.left_g,
                h: split.left_h,
                source: left_source,
                bounds: left_bounds,
            });
            next.push(NodeWork {
                tree_node: r,
                instances: right_idx,
                g: right_g,
                h: right_h,
                source: right_source,
                bounds: right_bounds,
            });
        }
        hist_charges.flush(device);
        split_charges.flush(device, device.model().params.sm_count, params.segments_c);
        if partition_elems > 0 {
            device.charge_kernel(
                "partition_level",
                Phase::Partition,
                &KernelCost {
                    flops: 3.0 * partition_elems as f64,
                    // flag read + index read + scan traffic + scatter
                    dram_bytes: (partition_elems * 17) as f64,
                    launches: 2.0,
                    ..Default::default()
                },
            );
        }
        frontier = next;
        parents = next_parents;
        if frontier.is_empty() {
            break;
        }
    }
    // Parent buffers planned for a level that never ran (depth limit).
    for p in parents.drain(..) {
        pool.release(p);
    }

    // Depth limit reached: everything still open becomes a leaf.
    for work in frontier {
        let mut v = leaf_values(&work.g, &work.h, config.lambda, config.learning_rate);
        if let Some(b) = &work.bounds {
            clamp_leaf(&mut v, b, config.learning_rate);
        }
        crate::sanitize::trace_leaf_values(device, v.len());
        tree.set_leaf(work.tree_node, v.clone());
        leaf_assignments.push((work.instances, v));
        leaf_nodes.push(work.tree_node);
    }

    GrowResult {
        tree,
        leaf_assignments,
        leaf_nodes,
        methods_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grad::compute_gradients;
    use crate::loss::MseLoss;
    use gbdt_data::synth::{make_regression, RegressionSpec};
    use gbdt_data::Dataset;

    fn setup(n: usize, m: usize, d: usize) -> (Dataset, BinnedDataset, Gradients) {
        let ds = make_regression(&RegressionSpec {
            instances: n,
            features: m,
            outputs: d,
            informative: (m / 2).max(1),
            noise: 0.05,
            seed: 42,
            ..Default::default()
        });
        let binned = BinnedDataset::build(ds.features(), 32);
        let device = Device::rtx4090();
        let scores = vec![0.0f32; n * d];
        let grads = compute_gradients(&device, &MseLoss, &scores, ds.targets(), n, d);
        (ds, binned, grads)
    }

    fn config() -> TrainConfig {
        TrainConfig {
            max_depth: 4,
            min_instances: 5,
            max_bins: 32,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn leaves_partition_all_instances() {
        let (_, data, grads) = setup(300, 6, 3);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..6).collect();
        let res = grow_tree(&device, &data, &grads, &config(), &features);
        let mut seen = vec![false; 300];
        for (instances, _) in &res.leaf_assignments {
            for &i in instances {
                assert!(!seen[i as usize], "instance {i} in two leaves");
                seen[i as usize] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "every instance must land in a leaf"
        );
        assert_eq!(res.leaf_assignments.len(), res.tree.num_leaves());
    }

    #[test]
    fn depth_limit_is_respected() {
        let (_, data, grads) = setup(400, 6, 2);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..6).collect();
        for depth in [1, 2, 3] {
            let mut cfg = config();
            cfg.max_depth = depth;
            let res = grow_tree(&device, &data, &grads, &cfg, &features);
            assert!(
                res.tree.depth() <= depth,
                "depth {} > limit {depth}",
                res.tree.depth()
            );
        }
    }

    #[test]
    fn tree_reduces_training_loss() {
        let (ds, data, grads) = setup(400, 6, 3);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..6).collect();
        let res = grow_tree(&device, &data, &grads, &config(), &features);

        // Applying the tree's leaf values must reduce squared error
        // against the targets (scores started at zero).
        let d = 3;
        let mut scores = vec![0.0f32; 400 * d];
        for (instances, value) in &res.leaf_assignments {
            for &i in instances {
                for k in 0..d {
                    scores[i as usize * d + k] += value[k];
                }
            }
        }
        let before: f64 = ds.targets().iter().map(|&t| (t as f64).powi(2)).sum();
        let after: f64 = scores
            .iter()
            .zip(ds.targets())
            .map(|(&s, &t)| ((s - t) as f64).powi(2))
            .sum();
        assert!(
            after < before * 0.9,
            "loss {after} not reduced from {before}"
        );
    }

    #[test]
    fn min_instances_bounds_leaf_sizes() {
        let (_, data, grads) = setup(300, 6, 2);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..6).collect();
        let mut cfg = config();
        cfg.min_instances = 30;
        let res = grow_tree(&device, &data, &grads, &cfg, &features);
        for (instances, _) in &res.leaf_assignments {
            assert!(
                instances.len() >= 30,
                "leaf of size {} violates min_instances",
                instances.len()
            );
        }
    }

    #[test]
    fn subtraction_grows_equivalent_tree() {
        let (_, data, grads) = setup(500, 8, 2);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..8).collect();
        let plain = grow_tree(&device, &data, &grads, &config(), &features);
        let mut cfg = config();
        cfg.hist.subtraction = true;
        let sub = grow_tree(&device, &data, &grads, &cfg, &features);
        // Identical split structure and (up to fp noise) leaf values.
        assert_eq!(plain.tree.num_nodes(), sub.tree.num_nodes());
        assert_eq!(plain.tree.num_leaves(), sub.tree.num_leaves());
        for ((ia, va), (ib, vb)) in plain.leaf_assignments.iter().zip(&sub.leaf_assignments) {
            assert_eq!(ia, ib);
            for (a, b) in va.iter().zip(vb) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn charges_land_in_expected_phases() {
        let (_, data, grads) = setup(4000, 12, 6);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..12).collect();
        let _ = grow_tree(&device, &data, &grads, &config(), &features);
        let s = device.summary();
        for phase in [Phase::Histogram, Phase::SplitEval, Phase::Partition] {
            assert!(
                s.by_phase.contains_key(&phase),
                "missing charges for {phase:?}"
            );
        }
        // Histogram must dominate split evaluation (the paper's Fig. 4).
        assert!(s.fraction(Phase::Histogram) > s.fraction(Phase::SplitEval));
    }

    #[test]
    fn monotone_constraint_makes_predictions_monotone() {
        use gbdt_data::{Dataset, DenseMatrix, Task};
        // y = x + noise on a single feature: a +1 constraint must yield
        // a globally non-decreasing prediction function (bound
        // propagation guarantees it, not just local ordering).
        let n = 500;
        let xs: Vec<f32> = (0..n).map(|i| i as f32 / 50.0).collect();
        let targets: Vec<f32> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| x + ((i * 37) % 11) as f32 * 0.2 - 1.0)
            .collect();
        let ds = Dataset::new(
            DenseMatrix::new(n, 1, xs.clone()),
            targets,
            1,
            Task::MultiRegression,
        );
        let binned = BinnedDataset::build(ds.features(), 32);
        let device = Device::rtx4090();
        let scores = vec![0.0f32; n];
        let grads = compute_gradients(&device, &MseLoss, &scores, ds.targets(), n, 1);
        let mut cfg = config();
        cfg.max_depth = 5;
        cfg.min_instances = 3;
        cfg.monotone_constraints = vec![1];
        let res = grow_tree(&device, &binned, &grads, &cfg, &[0]);
        assert!(
            res.tree.num_leaves() > 2,
            "constraint should still allow splits"
        );

        let mut last = f32::NEG_INFINITY;
        for &x in &xs {
            let mut out = [0.0f32];
            res.tree.predict_into(&[x], &mut out);
            assert!(
                out[0] >= last - 1e-6,
                "prediction decreased at x={x}: {} < {last}",
                out[0]
            );
            last = out[0];
        }
    }

    #[test]
    fn opposing_constraint_suppresses_splits() {
        use gbdt_data::{Dataset, DenseMatrix, Task};
        // y strictly increasing in x, but we demand non-increasing: no
        // admissible split exists, so the tree must stay (nearly) a stump.
        let n = 300;
        let xs: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let targets: Vec<f32> = xs.clone();
        let ds = Dataset::new(
            DenseMatrix::new(n, 1, xs),
            targets,
            1,
            Task::MultiRegression,
        );
        let binned = BinnedDataset::build(ds.features(), 32);
        let device = Device::rtx4090();
        let scores = vec![0.0f32; n];
        let grads = compute_gradients(&device, &MseLoss, &scores, ds.targets(), n, 1);
        let mut cfg = config();
        cfg.monotone_constraints = vec![-1];
        let res = grow_tree(&device, &binned, &grads, &cfg, &[0]);
        assert_eq!(
            res.tree.num_leaves(),
            1,
            "a −1 constraint on increasing data must forbid every split"
        );
    }

    #[test]
    fn unconstrained_features_are_unaffected() {
        let (_, data, grads) = setup(400, 6, 2);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..6).collect();
        let plain = grow_tree(&device, &data, &grads, &config(), &features);
        let mut cfg = config();
        cfg.monotone_constraints = vec![0; 6];
        let zeroed = grow_tree(&device, &data, &grads, &cfg, &features);
        assert_eq!(
            plain.tree, zeroed.tree,
            "all-zero constraints must be a no-op"
        );
    }

    #[test]
    fn streams_shorten_levels_without_changing_the_model() {
        let (_, data, grads) = setup(2000, 10, 4);
        let features: Vec<u32> = (0..10).collect();
        let mut serial_cfg = config();
        serial_cfg.max_depth = 6;
        let mut streamed_cfg = serial_cfg.clone();
        streamed_cfg.streams = 4;

        let d1 = Device::rtx4090();
        let serial = grow_tree(&d1, &data, &grads, &serial_cfg, &features);
        let d2 = Device::rtx4090();
        let streamed = grow_tree(&d2, &data, &grads, &streamed_cfg, &features);

        // Identical model: streams are a scheduling change only.
        assert_eq!(serial.tree, streamed.tree);
        // Deep levels have many independent node kernels → overlap wins.
        assert!(
            d2.now_ns() < d1.now_ns(),
            "4 streams ({}) should beat serial ({})",
            d2.now_ns(),
            d1.now_ns()
        );
        // Never better than perfect 4× overlap of the histogram phase.
        let hist_serial = d1.summary().by_phase[&Phase::Histogram];
        let hist_streamed = d2.summary().by_phase[&Phase::Histogram];
        assert!(hist_streamed * 4.2 > hist_serial, "superlinear overlap");
    }

    #[test]
    fn parallel_toggle_changes_neither_model_nor_simulated_time() {
        let (_, data, grads) = setup(2000, 10, 4);
        let features: Vec<u32> = (0..10).collect();
        for subtraction in [false, true] {
            let mut on_cfg = config();
            on_cfg.max_depth = 6;
            on_cfg.hist.subtraction = subtraction;
            on_cfg.parallel_level_hist = true;
            let mut off_cfg = on_cfg.clone();
            off_cfg.parallel_level_hist = false;

            let d_on = Device::rtx4090();
            let on = grow_tree(&d_on, &data, &grads, &on_cfg, &features);
            let d_off = Device::rtx4090();
            let off = grow_tree(&d_off, &data, &grads, &off_cfg, &features);

            // Bit-identical model and leaf values…
            assert_eq!(on.tree, off.tree, "subtraction={subtraction}");
            for ((ia, va), (ib, vb)) in on.leaf_assignments.iter().zip(&off.leaf_assignments) {
                assert_eq!(ia, ib);
                assert_eq!(va, vb, "leaf values must match bitwise");
            }
            // …and bit-identical simulated timeline: charges are issued
            // serially in node-index order regardless of the toggle.
            assert_eq!(d_on.now_ns(), d_off.now_ns(), "subtraction={subtraction}");
        }
    }

    #[test]
    fn pooled_growth_stops_allocating_after_first_tree() {
        let (_, data, grads) = setup(500, 8, 3);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..8).collect();
        let mut cfg = config();
        cfg.hist.subtraction = true;
        let mut pool = HistogramPool::new(features.len(), 3, cfg.max_bins);
        let root: Vec<u32> = (0..500).collect();
        let first = grow_tree_pooled(
            &device,
            &data,
            &grads,
            &cfg,
            &features,
            root.clone(),
            &mut pool,
        );
        let high_water = pool.allocated();
        assert!(high_water > 0);
        let second = grow_tree_pooled(&device, &data, &grads, &cfg, &features, root, &mut pool);
        assert_eq!(
            pool.allocated(),
            high_water,
            "second tree must reuse the first tree's buffers"
        );
        assert_eq!(first.tree, second.tree);
    }

    #[test]
    fn streams_and_subtraction_compose_deterministically() {
        // The deferred subtraction build charges in the child's level;
        // two identical runs must produce identical timelines.
        let (_, data, grads) = setup(1500, 8, 3);
        let features: Vec<u32> = (0..8).collect();
        let mut cfg = config();
        cfg.max_depth = 5;
        cfg.hist.subtraction = true;
        cfg.streams = 4;
        let d1 = Device::rtx4090();
        let r1 = grow_tree(&d1, &data, &grads, &cfg, &features);
        let d2 = Device::rtx4090();
        let r2 = grow_tree(&d2, &data, &grads, &cfg, &features);
        assert_eq!(r1.tree, r2.tree);
        assert_eq!(d1.now_ns(), d2.now_ns());
    }

    #[test]
    fn methods_used_reports_selection() {
        let (_, data, grads) = setup(300, 6, 2);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..6).collect();
        let mut cfg = config();
        cfg.hist.method = HistogramMethod::GlobalMemory;
        let res = grow_tree(&device, &data, &grads, &cfg, &features);
        let total: usize = res.methods_used.values().sum();
        assert!(total > 0);
        assert!(res
            .methods_used
            .contains_key(&HistogramMethod::GlobalMemory));
    }
}
