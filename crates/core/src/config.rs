//! Training hyper-parameters.
//!
//! Defaults follow the paper's §4.1: 100 trees, maximum depth 7,
//! learning rate 1, minimum 20 instances per node, 256 bins.

use serde::{Deserialize, Serialize};

/// Which histogram-building kernel to use (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum HistogramMethod {
    /// Global-memory atomics (§3.3.2): simple, fast for small nodes,
    /// degrades under atomic contention.
    GlobalMemory,
    /// Shared-memory tiled atomics (§3.3.3): per-block sub-histograms in
    /// 48 KB shared memory, flushed to global; resilient to contention.
    SharedMemory,
    /// Sort-and-reduce (§3.3.4): contention-free `sort_by_key` +
    /// `reduce_by_key`, at the price of sorting overhead.
    SortReduce,
    /// Pick the predicted-cheapest method per node from the cost model
    /// (the paper's "dynamically selects … based on the dataset
    /// characteristics and training stage").
    Adaptive,
}

/// Gradient-sketching option for tree-*structure* search (SketchBoost,
/// Iosipoi & Vakhrushev 2022 — the paper's strongest baseline).
///
/// When active, each boosting round reduces the `n × d` gradient matrix
/// to an `n × k` sketch on-device and grows the whole tree — histogram
/// building, split search, partition — on `k`-dimensional histograms.
/// Leaf *values* are always refit from the full `d`-dimensional
/// gradients afterwards, so predictions and model quality stay
/// full-output. [`OutputSketch::None`] is guaranteed bit-identical to a
/// trainer without sketching (no extra kernels, no extra charges).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum OutputSketch {
    /// Exact multi-output training on all `d` outputs (the default).
    #[default]
    None,
    /// Keep the `k` output columns with the largest total absolute
    /// gradient (per-output norm reduction + top-k select + gather).
    TopOutputs(usize),
    /// Keep `k` uniformly random output columns, re-drawn per tree
    /// (sampling + gather).
    RandomSampling(usize),
    /// Project the gradient rows onto `k` random Gaussian directions,
    /// re-drawn per tree (GEMM-style pass). Hessians use the
    /// per-instance mean (exact for MSE).
    RandomProjection(usize),
}

impl OutputSketch {
    /// Whether sketching is disabled.
    pub fn is_none(self) -> bool {
        self == OutputSketch::None
    }

    /// The sketch dimension `k`, or `None` when sketching is off.
    pub fn k(self) -> Option<usize> {
        match self {
            OutputSketch::None => None,
            OutputSketch::TopOutputs(k)
            | OutputSketch::RandomSampling(k)
            | OutputSketch::RandomProjection(k) => Some(k),
        }
    }

    /// The output dimension tree-structure search actually runs at for
    /// a `d`-output dataset: `d` when off, otherwise `k` clamped to
    /// `1..=d`. Every histogram/split/partition kernel and the
    /// histogram pool are shaped by this.
    pub fn effective_dim(self, d: usize) -> usize {
        match self.k() {
            None => d,
            Some(k) => k.min(d).max(1),
        }
    }

    /// Short stable label used by bench reports and CLI flags
    /// (`none`, `top<k>`, `rand<k>`, `proj<k>`).
    pub fn label(self) -> String {
        match self {
            OutputSketch::None => "none".to_string(),
            OutputSketch::TopOutputs(k) => format!("top{k}"),
            OutputSketch::RandomSampling(k) => format!("rand{k}"),
            OutputSketch::RandomProjection(k) => format!("proj{k}"),
        }
    }
}

/// Histogram-pipeline options.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistOptions {
    /// Kernel selection strategy.
    pub method: HistogramMethod,
    /// Warp-level optimization (§3.4.1): 4-per-`u32` bin packing and the
    /// conflict-avoiding shared-memory layout ("+wo" in Fig. 6a).
    pub warp_packing: bool,
    /// Histogram subtraction: build only the smaller child's histogram
    /// and derive the sibling as `parent − child`.
    pub subtraction: bool,
    /// Use the sparsity-aware CSC path when the data is sparse enough:
    /// explicit entries accumulate individually, the implicit-zero bin
    /// receives the node remainder in closed form.
    pub sparse_aware: bool,
    /// Store gradients/Hessians as bfloat16 (upper 16 bits of the f32):
    /// halves gradient memory and histogram-read traffic — the paper's
    /// memory-efficiency concern — at a small precision cost.
    pub quantized_gradients: bool,
}

impl Default for HistOptions {
    fn default() -> Self {
        HistOptions {
            method: HistogramMethod::Adaptive,
            warp_packing: true,
            subtraction: false,
            sparse_aware: false,
            quantized_gradients: false,
        }
    }
}

/// Full training configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of boosting iterations (trees). Paper default: 100.
    pub num_trees: usize,
    /// Maximum tree depth (root = depth 0). Paper default: 7.
    pub max_depth: usize,
    /// Shrinkage applied to leaf values. Paper default: 1.0.
    pub learning_rate: f32,
    /// Minimum instances required in each child of a split.
    /// Paper default: 20.
    pub min_instances: usize,
    /// Maximum histogram bins per feature (≤ 256). Paper default: 256.
    pub max_bins: usize,
    /// L2 regularization λ on leaf values (paper §2.2).
    pub lambda: f64,
    /// Minimum gain γ for a split to be kept (paper Algorithm 1's
    /// "threshold for valid splits").
    pub min_gain: f64,
    /// Histogram pipeline options.
    pub hist: HistOptions,
    /// Adaptive segments-per-block constant `C` (paper §3.1.3).
    pub segments_per_block_c: f64,
    /// Fraction of instances sampled (without replacement) per tree —
    /// stochastic gradient boosting. 1.0 disables sampling.
    pub subsample: f64,
    /// Fraction of features sampled per tree. 1.0 disables sampling.
    pub colsample_bytree: f64,
    /// Gradient-based one-side sampling (GOSS, LightGBM): keep the
    /// `top_rate` fraction of instances with the largest gradient norm
    /// and a random `other_rate` fraction of the rest, amplifying the
    /// latter's gradients by `(1 − top_rate)/other_rate`. `None`
    /// disables GOSS (it overrides `subsample` when set).
    pub goss: Option<GossConfig>,
    /// Per-feature monotone constraints (+1 non-decreasing, −1
    /// non-increasing, 0 free). Empty disables; otherwise must have one
    /// entry per feature. Enforced on every output dimension with bound
    /// propagation down the tree.
    pub monotone_constraints: Vec<i8>,
    /// Number of CUDA-style streams used to overlap the *independent*
    /// per-node histogram kernels of one tree level. 1 serializes (the
    /// default); more streams shorten deep levels full of small nodes,
    /// whose launch latencies then overlap.
    pub streams: usize,
    /// Build the histograms of one tree level's nodes in parallel on
    /// the host (they are mutually independent — the same property the
    /// `streams` overlap exploits on the simulated device). Affects
    /// host wall-clock only: device charges are issued serially in
    /// node-index order either way, so the simulated timeline and the
    /// grown tree are bit-identical at any thread count.
    pub parallel_level_hist: bool,
    /// Gradient sketching for tree-structure search: grow each tree on
    /// an `n × k` sketch of the gradients while leaf values stay
    /// full-`d` (SketchBoost's recipe). [`OutputSketch::None`] (the
    /// default) is bit-identical to a trainer without sketching.
    pub sketch: OutputSketch,
    /// RNG seed for any stochastic component.
    pub seed: u64,
    /// Transient-fault retry budget (see [`crate::RetryPolicy`]). Not
    /// serialized: fault tolerance is a property of the run, not the
    /// model, so checkpoints and model files stay byte-stable.
    #[serde(skip)]
    pub retry: crate::error::RetryPolicy,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            num_trees: 100,
            max_depth: 7,
            learning_rate: 1.0,
            min_instances: 20,
            max_bins: 256,
            lambda: 1.0,
            min_gain: 1e-9,
            hist: HistOptions::default(),
            segments_per_block_c: 4.0,
            subsample: 1.0,
            colsample_bytree: 1.0,
            goss: None,
            monotone_constraints: Vec::new(),
            streams: 1,
            parallel_level_hist: true,
            sketch: OutputSketch::None,
            seed: 0,
            retry: crate::error::RetryPolicy::default(),
        }
    }
}

/// GOSS sampling rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GossConfig {
    /// Fraction of instances kept by gradient magnitude.
    pub top_rate: f64,
    /// Fraction of the remaining instances sampled uniformly.
    pub other_rate: f64,
}

impl GossConfig {
    /// LightGBM's default rates.
    pub fn default_rates() -> Self {
        GossConfig {
            top_rate: 0.2,
            other_rate: 0.1,
        }
    }

    /// Validate the rates.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.top_rate > 0.0 && self.other_rate > 0.0) {
            return Err("GOSS rates must be positive".into());
        }
        if self.top_rate + self.other_rate > 1.0 {
            return Err(format!(
                "GOSS top_rate {} + other_rate {} exceeds 1",
                self.top_rate, self.other_rate
            ));
        }
        Ok(())
    }
}

/// A rejected [`TrainConfig`]: carries the human-readable reason the
/// configuration failed [`TrainConfig::validate`]. Returned by the
/// fallible trainer constructors (`GpuTrainer::try_new`,
/// `MultiGpuTrainer::try_new`); the panicking `new` wrappers surface
/// the same message via `expect`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl ConfigError {
    /// The validation failure message.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid training configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl From<String> for ConfigError {
    fn from(msg: String) -> Self {
        ConfigError(msg)
    }
}

impl TrainConfig {
    /// Validate parameter ranges; call before training.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_trees == 0 {
            return Err("num_trees must be ≥ 1".into());
        }
        if self.max_depth == 0 || self.max_depth > 24 {
            return Err(format!("max_depth {} out of range 1..=24", self.max_depth));
        }
        if !(2..=256).contains(&self.max_bins) {
            return Err(format!("max_bins {} out of range 2..=256", self.max_bins));
        }
        if self.learning_rate <= 0.0 || self.learning_rate.is_nan() {
            return Err("learning_rate must be positive".into());
        }
        if self.lambda < 0.0 {
            return Err("lambda must be non-negative".into());
        }
        if self.min_gain < 0.0 {
            return Err("min_gain must be non-negative".into());
        }
        if !(self.subsample > 0.0 && self.subsample <= 1.0) {
            return Err(format!("subsample {} out of range (0, 1]", self.subsample));
        }
        if !(self.colsample_bytree > 0.0 && self.colsample_bytree <= 1.0) {
            return Err(format!(
                "colsample_bytree {} out of range (0, 1]",
                self.colsample_bytree
            ));
        }
        if let Some(goss) = &self.goss {
            goss.validate()?;
        }
        if self.streams == 0 || self.streams > 64 {
            return Err(format!("streams {} out of range 1..=64", self.streams));
        }
        if self
            .monotone_constraints
            .iter()
            .any(|&c| !(-1..=1).contains(&c))
        {
            return Err("monotone constraints must be −1, 0 or +1".into());
        }
        if self.sketch.k() == Some(0) {
            return Err("sketch dimension k must be ≥ 1".into());
        }
        Ok(())
    }

    /// Builder-style setter for the number of trees.
    pub fn with_trees(mut self, n: usize) -> Self {
        self.num_trees = n;
        self
    }

    /// Builder-style setter for the maximum depth.
    pub fn with_depth(mut self, d: usize) -> Self {
        self.max_depth = d;
        self
    }

    /// Builder-style setter for the histogram method.
    pub fn with_hist_method(mut self, m: HistogramMethod) -> Self {
        self.hist.method = m;
        self
    }

    /// Builder-style setter for warp packing.
    pub fn with_warp_packing(mut self, on: bool) -> Self {
        self.hist.warp_packing = on;
        self
    }

    /// Builder-style setter for gradient sketching.
    pub fn with_sketch(mut self, s: OutputSketch) -> Self {
        self.sketch = s;
        self
    }

    /// Builder-style setter for the transient-fault retry budget.
    pub fn with_retry(mut self, policy: crate::error::RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Builder-style setter for the per-device stream count (`1` =
    /// the serial schedule).
    pub fn with_streams(mut self, n: usize) -> Self {
        self.streams = n;
        self
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default, clippy::needless_range_loop)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_section_4_1() {
        let c = TrainConfig::default();
        assert_eq!(c.num_trees, 100);
        assert_eq!(c.max_depth, 7);
        assert_eq!(c.learning_rate, 1.0);
        assert_eq!(c.min_instances, 20);
        assert_eq!(c.max_bins, 256);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_values() {
        assert!(TrainConfig::default().with_trees(0).validate().is_err());
        assert!(TrainConfig::default().with_depth(0).validate().is_err());
        assert!(TrainConfig::default().with_depth(25).validate().is_err());
        let mut c = TrainConfig::default();
        c.max_bins = 300;
        assert!(c.validate().is_err());
        let mut c = TrainConfig::default();
        c.learning_rate = 0.0;
        assert!(c.validate().is_err());
        let mut c = TrainConfig::default();
        c.lambda = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn sketch_defaults_off_and_validates() {
        let c = TrainConfig::default();
        assert!(c.sketch.is_none());
        assert_eq!(c.sketch.k(), None);
        assert_eq!(c.sketch.label(), "none");
        assert!(c.validate().is_ok());

        for mk in [
            OutputSketch::TopOutputs as fn(usize) -> OutputSketch,
            OutputSketch::RandomSampling,
            OutputSketch::RandomProjection,
        ] {
            let ok = TrainConfig::default().with_sketch(mk(4));
            assert_eq!(ok.sketch.k(), Some(4));
            assert!(ok.validate().is_ok());
            let bad = TrainConfig::default().with_sketch(mk(0));
            assert!(bad.validate().is_err(), "k = 0 must be rejected");
        }
        assert_eq!(OutputSketch::TopOutputs(4).label(), "top4");
        assert_eq!(OutputSketch::RandomSampling(8).label(), "rand8");
        assert_eq!(OutputSketch::RandomProjection(2).label(), "proj2");
    }

    #[test]
    fn builders_chain() {
        let c = TrainConfig::default()
            .with_trees(5)
            .with_depth(3)
            .with_hist_method(HistogramMethod::SortReduce)
            .with_warp_packing(false);
        assert_eq!(c.num_trees, 5);
        assert_eq!(c.max_depth, 3);
        assert_eq!(c.hist.method, HistogramMethod::SortReduce);
        assert!(!c.hist.warp_packing);
    }
}
