//! Device-resident SoA ensemble and the charged traversal kernels.
//!
//! Cost formulas (RTX 4090 sector size `S = 32 B`, batch of `n` rows,
//! `T` trees, `d` outputs, `H` = measured total hops over all
//! (row, tree) traversals):
//!
//! * `predict_compiled_instance` — one launch, one thread per row:
//!   - flops: `4·H` (load/compare/select per hop) + `n·T·d` leaf-gather
//!     adds + `n·d` base initialization;
//!   - DRAM: `H·(S + 4)` — each hop pulls one poorly-coalesced node
//!     quad (feature/threshold/left/right share a sector) plus the
//!     tested feature value — `n·T·⌈4d/S⌉·S` leaf-vector gathers,
//!     `4·n·d` score writes, `4·d` base broadcast.
//! * `predict_compiled_tree` — `T` launches, one thread per row per
//!   tree: same traversal/gather terms, plus `4·T·n·d` partial-matrix
//!   writes (each tree materializes its own `n × d` delta).
//! * `predict_reduce` — one launch folding the `T` partials into the
//!   final matrix: `T·n·d + n·d` adds; reads `4·T·n·d + 4·d`, writes
//!   `4·n·d`.
//!
//! The tree-level path therefore always charges strictly more than the
//! instance path on a multi-tree ensemble — the "extra reduction" of
//! paper §3.4.2 — while exposing more parallelism for small batches.

use crate::compiled::CompiledEnsemble;
use crate::error::ServeError;
use crate::predict::PredictMode;
use crate::serve::trace;
use gbdt_data::DenseMatrix;
use gpusim::cost::KernelCost;
use gpusim::{buffer_checksum_on, Device, GpuBuffer, Phase};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Borrowed view of the concatenated SoA arrays: everything a traversal
/// (or a sanitizer trace replaying one) needs.
pub(crate) struct SoaView<'a> {
    /// Split feature per node, all trees concatenated.
    pub feature: &'a [u32],
    /// Split threshold per node.
    pub threshold: &'a [f32],
    /// Left child per node (tree-local encoding; `< 0` → leaf slot).
    pub left: &'a [i32],
    /// Right child per node.
    pub right: &'a [i32],
    /// Concatenated leaf-value vectors.
    pub leaf_values: &'a [f32],
    /// Per-tree root marker (tree-local encoding).
    pub roots: &'a [i32],
    /// Per-tree node offset into the concatenated node arrays.
    pub node_base: &'a [usize],
    /// Per-tree element offset into `leaf_values`.
    pub leaf_base: &'a [usize],
    /// Output dimension.
    pub d: usize,
}

impl SoaView<'_> {
    /// Walk tree `t` for `row`; returns the global element offset of
    /// the reached leaf vector in `leaf_values` and the hop count.
    #[inline]
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(v > t)` routes NaN left
    pub(crate) fn walk(&self, t: usize, row: &[f32]) -> (usize, u64) {
        let nb = self.node_base[t];
        let mut at = self.roots[t];
        let mut hops = 0u64;
        while at >= 0 {
            let i = nb + at as usize;
            let v = row[self.feature[i] as usize];
            at = if !(v > self.threshold[i]) {
                self.left[i]
            } else {
                self.right[i]
            };
            hops += 1;
        }
        (self.leaf_base[t] + ((-at - 1) as usize) * self.d, hops)
    }
}

/// A [`CompiledEnsemble`] resident on a simulated device as
/// structure-of-arrays buffers, traversed by charged kernels.
pub struct DeviceEnsemble {
    device: Arc<Device>,
    feature: GpuBuffer<u32>,
    threshold: GpuBuffer<f32>,
    left: GpuBuffer<i32>,
    right: GpuBuffer<i32>,
    leaf_values: GpuBuffer<f32>,
    roots: GpuBuffer<i32>,
    base: GpuBuffer<f32>,
    // Host-side layout tables (tree → offset); on hardware these would
    // be kernel parameters, not resident arrays.
    node_base: Vec<usize>,
    leaf_base: Vec<usize>,
    d: usize,
    /// Per-buffer FNV digests captured right after upload, before any
    /// planned ECC corruption lands; [`DeviceEnsemble::verify`]
    /// recomputes and compares against these.
    digests: [(&'static str, u64); 7],
}

impl DeviceEnsemble {
    /// Upload `ens` to `device`, charging the H2D transfer of every
    /// array ([`Phase::Transfer`] via the PCIe cost model).
    pub fn upload(device: Arc<Device>, ens: &CompiledEnsemble) -> Self {
        Self::upload_on(device, ens, 0)
    }

    /// [`DeviceEnsemble::upload`] with the transfers and the post-copy
    /// checksum pass issued on `stream`, so a staged model version can
    /// double-buffer behind in-flight serving batches on the default
    /// stream. Callers fence the stream before uploading — streams are
    /// born idle at t = 0.
    pub fn upload_on(device: Arc<Device>, ens: &CompiledEnsemble, stream: usize) -> Self {
        let trees = ens.trees();
        let mut feature = Vec::with_capacity(ens.num_nodes());
        let mut threshold = Vec::with_capacity(ens.num_nodes());
        let mut left = Vec::with_capacity(ens.num_nodes());
        let mut right = Vec::with_capacity(ens.num_nodes());
        let mut leaf_values = Vec::with_capacity(ens.num_leaf_values());
        let mut roots = Vec::with_capacity(trees.len());
        let mut node_base = Vec::with_capacity(trees.len());
        let mut leaf_base = Vec::with_capacity(trees.len());
        for t in trees {
            node_base.push(feature.len());
            leaf_base.push(leaf_values.len());
            feature.extend_from_slice(&t.feature);
            threshold.extend_from_slice(&t.threshold);
            left.extend_from_slice(&t.left);
            right.extend_from_slice(&t.right);
            leaf_values.extend_from_slice(&t.leaf_values);
            roots.push(t.root);
        }
        let mut this = DeviceEnsemble {
            feature: device.htod_on(&feature, stream),
            threshold: device.htod_on(&threshold, stream),
            left: device.htod_on(&left, stream),
            right: device.htod_on(&right, stream),
            leaf_values: device.htod_on(&leaf_values, stream),
            roots: device.htod_on(&roots, stream),
            base: device.htod_on(ens.base(), stream),
            node_base,
            leaf_base,
            d: ens.d(),
            device,
            digests: [("", 0); 7],
        };
        // Capture the known-good digest of every resident array, then
        // let any planned ECC corruption land — the upload itself is
        // verified, later faults are caught by `verify`.
        this.digests = this.checksums_on(stream);
        let device = this.device.clone();
        device.apply_planned_corruption("serve_feature", &mut this.feature);
        device.apply_planned_corruption("serve_threshold", &mut this.threshold);
        device.apply_planned_corruption("serve_left", &mut this.left);
        device.apply_planned_corruption("serve_right", &mut this.right);
        device.apply_planned_corruption("serve_leaf_values", &mut this.leaf_values);
        device.apply_planned_corruption("serve_roots", &mut this.roots);
        device.apply_planned_corruption("serve_base", &mut this.base);
        this
    }

    /// Checksum every resident SoA buffer with the charged
    /// `buffer_checksum` kernel on the default stream.
    fn checksums(&self) -> [(&'static str, u64); 7] {
        self.checksums_on(0)
    }

    /// [`DeviceEnsemble::checksums`] issued on `stream`: digests are
    /// identical regardless of stream; only the charge timestamps move.
    fn checksums_on(&self, stream: usize) -> [(&'static str, u64); 7] {
        let dev = &self.device;
        [
            (
                "serve_feature",
                buffer_checksum_on(dev, "serve_feature", &self.feature, stream),
            ),
            (
                "serve_threshold",
                buffer_checksum_on(dev, "serve_threshold", &self.threshold, stream),
            ),
            (
                "serve_left",
                buffer_checksum_on(dev, "serve_left", &self.left, stream),
            ),
            (
                "serve_right",
                buffer_checksum_on(dev, "serve_right", &self.right, stream),
            ),
            (
                "serve_leaf_values",
                buffer_checksum_on(dev, "serve_leaf_values", &self.leaf_values, stream),
            ),
            (
                "serve_roots",
                buffer_checksum_on(dev, "serve_roots", &self.roots, stream),
            ),
            (
                "serve_base",
                buffer_checksum_on(dev, "serve_base", &self.base, stream),
            ),
        ]
    }

    /// Re-checksum every resident buffer and compare against the
    /// digests captured at upload. Returns the first mismatch as
    /// [`ServeError::Corruption`] — the ECC scrub a real serving fleet
    /// runs before trusting a long-resident model.
    pub fn verify(&self) -> Result<(), ServeError> {
        for (expected, fresh) in self.digests.iter().zip(self.checksums()) {
            if expected.1 != fresh.1 {
                let err = ServeError::Corruption {
                    buffer: expected.0,
                    expected: expected.1,
                    actual: fresh.1,
                };
                // Observer only: the verdict is already decided; the
                // flight recorder keeps what the device was serving.
                if let Some(tel) = self.device.telemetry() {
                    tel.record_postmortem(&err.to_string());
                }
                return Err(err);
            }
        }
        Ok(())
    }

    /// The device this ensemble is resident on.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// Output dimension.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Number of resident trees.
    pub fn num_trees(&self) -> usize {
        self.node_base.len()
    }

    /// Device bytes held by the resident SoA buffers.
    pub fn resident_bytes(&self) -> usize {
        self.feature.size_bytes()
            + self.threshold.size_bytes()
            + self.left.size_bytes()
            + self.right.size_bytes()
            + self.leaf_values.size_bytes()
            + self.roots.size_bytes()
            + self.base.size_bytes()
    }

    pub(crate) fn view(&self) -> SoaView<'_> {
        SoaView {
            feature: self.feature.as_slice(),
            threshold: self.threshold.as_slice(),
            left: self.left.as_slice(),
            right: self.right.as_slice(),
            leaf_values: self.leaf_values.as_slice(),
            roots: self.roots.as_slice(),
            node_base: &self.node_base,
            leaf_base: &self.leaf_base,
            d: self.d,
        }
    }

    /// Batched raw scores (`n × d`) with the given parallelization
    /// scheme. Bit-identical to [`CompiledEnsemble::predict`] (and so
    /// to [`crate::model::Model::predict`]) in both modes.
    pub fn predict(&self, mode: PredictMode, features: &DenseMatrix) -> Vec<f32> {
        match mode {
            PredictMode::InstanceLevel => self.predict_instance(features),
            PredictMode::TreeLevel => self.predict_tree(features),
        }
    }

    /// Instance-level scheme: one thread per row walks every tree.
    fn predict_instance(&self, features: &DenseMatrix) -> Vec<f32> {
        let _scope = self.device.prof_scope("serve_predict", None);
        let n = features.rows();
        let d = self.d;
        let t = self.num_trees();
        let view = self.view();
        let base = self.base.as_slice();
        let mut scores = vec![0.0f32; n * d];
        let total_hops = AtomicU64::new(0);
        scores.par_chunks_mut(d).enumerate().for_each(|(i, out)| {
            out.copy_from_slice(base);
            let row = features.row(i);
            let mut hops = 0u64;
            for tree in 0..t {
                let (off, h) = view.walk(tree, row);
                hops += h;
                for (o, v) in out.iter_mut().zip(&view.leaf_values[off..off + d]) {
                    *o += v;
                }
            }
            // u64 addition is associative: the total is deterministic
            // regardless of rayon's reduction order.
            total_hops.fetch_add(hops, Ordering::Relaxed);
        });
        trace::trace_predict_instance(&self.device, &view, features);
        let hops = total_hops.load(Ordering::Relaxed) as f64;
        let (traverse_flops, traverse_dram) = self.traversal_cost(hops, n);
        let out_elems = (n * d) as f64;
        self.device.charge_kernel(
            "predict_compiled_instance",
            Phase::Serve,
            &KernelCost {
                flops: traverse_flops + out_elems,
                dram_bytes: traverse_dram + out_elems * 4.0 + (d * 4) as f64,
                launches: 1.0,
                ..Default::default()
            },
        );
        scores
    }

    /// Tree-level scheme: one launch per tree materializes an `n × d`
    /// partial, folded by an extra reduce kernel. Partials are produced
    /// in groups of at most `threads`, so peak host memory stays
    /// `O(threads · n · d)`; the fold runs in tree order, keeping the
    /// result bit-identical to the instance path.
    fn predict_tree(&self, features: &DenseMatrix) -> Vec<f32> {
        let _scope = self.device.prof_scope("serve_predict", None);
        let n = features.rows();
        let d = self.d;
        let t = self.num_trees();
        let view = self.view();
        let mut scores = vec![0.0f32; n * d];
        for out in scores.chunks_mut(d) {
            out.copy_from_slice(self.base.as_slice());
        }
        let mut total_hops = 0u64;
        let group = rayon::current_num_threads().max(1);
        let tree_ids: Vec<usize> = (0..t).collect();
        for chunk in tree_ids.chunks(group) {
            let partials: Vec<(Vec<f32>, u64)> = chunk
                .par_iter()
                .map(|&tree| {
                    let mut p = vec![0.0f32; n * d];
                    let mut hops = 0u64;
                    for i in 0..n {
                        let (off, h) = view.walk(tree, features.row(i));
                        hops += h;
                        p[i * d..(i + 1) * d].copy_from_slice(&view.leaf_values[off..off + d]);
                    }
                    (p, hops)
                })
                .collect();
            for (p, hops) in partials {
                total_hops += hops;
                for (s, v) in scores.iter_mut().zip(p) {
                    *s += v;
                }
            }
        }
        trace::trace_predict_tree(&self.device, &view, features);
        let hops = total_hops as f64;
        let (traverse_flops, traverse_dram) = self.traversal_cost(hops, n);
        let out_elems = (n * d) as f64;
        let tf = t.max(1) as f64;
        self.device.charge_kernel(
            "predict_compiled_tree",
            Phase::Serve,
            &KernelCost {
                flops: traverse_flops,
                dram_bytes: traverse_dram + tf * out_elems * 4.0,
                launches: tf,
                ..Default::default()
            },
        );
        self.device.charge_kernel(
            "predict_reduce",
            Phase::Serve,
            &KernelCost {
                flops: tf * out_elems + out_elems,
                dram_bytes: tf * out_elems * 4.0 + out_elems * 4.0 + (d * 4) as f64,
                launches: 1.0,
                ..Default::default()
            },
        );
        scores
    }

    /// Shared traversal cost terms: hop arithmetic + node/feature loads
    /// + per-(row, tree) leaf-vector gathers at sector granularity.
    fn traversal_cost(&self, hops: f64, n: usize) -> (f64, f64) {
        let sect = self.device.props().cost.sector_bytes as f64;
        let pairs = (n * self.num_trees()) as f64;
        let leaf_gather = ((self.d * 4) as f64 / sect).ceil() * sect;
        let flops = hops * 4.0 + pairs * self.d as f64;
        let dram = hops * (sect + 4.0) + pairs * leaf_gather;
        (flops, dram)
    }
}
