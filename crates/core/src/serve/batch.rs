//! Micro-batching front end for a [`DeviceEnsemble`].
//!
//! Serving traffic arrives one row at a time; launching a traversal
//! kernel per row pays the fixed launch overhead (~1.2 µs on the
//! modeled RTX 4090) per instance, which caps single-row throughput far
//! below the device's streaming rate. [`BatchServer`] accumulates
//! submissions and flushes one batched kernel when either trigger
//! fires:
//!
//! * **size** — the pending batch reaches [`BatchConfig::max_batch`];
//! * **deadline** — a new arrival finds the oldest pending request has
//!   waited [`BatchConfig::max_delay_ns`]; the flush is stamped at the
//!   deadline itself (the server would have acted then), *before* the
//!   new arrival is enqueued.
//!
//! Time is the device's simulated clock: flushing advances the clock to
//! the trigger instant (booking idle time if the device was ahead of
//! it), runs the charged kernels, and records per-request latency as
//! `completion − arrival`. Results are returned in submission order and
//! are bit-identical to [`crate::compiled::CompiledEnsemble::predict`]
//! regardless of how requests were grouped: rows are independent, and
//! each row's accumulation order never changes.

use crate::compiled::CompiledEnsemble;
use crate::config::ConfigError;
use crate::predict::PredictMode;
use crate::serve::DeviceEnsemble;
use gbdt_data::DenseMatrix;
use gpusim::Event;

/// Copy stream carrying staged model uploads, double-buffered behind
/// batches flushing on the default stream.
const UPLOAD_STREAM: usize = 1;

/// Micro-batching policy.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Flush when this many rows are pending.
    pub max_batch: usize,
    /// Flush when the oldest pending request has waited this long
    /// (simulated ns). `INFINITY` disables the deadline trigger.
    pub max_delay_ns: f64,
    /// Parallelization scheme used for flushed batches.
    pub mode: PredictMode,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 256,
            max_delay_ns: f64::INFINITY,
            mode: PredictMode::InstanceLevel,
        }
    }
}

/// One flushed batch: scores for requests `first_id .. first_id + rows`
/// in submission order.
#[derive(Debug, Clone)]
pub struct ServedBatch {
    /// Id of the first request in the batch (ids are assigned
    /// sequentially by [`BatchServer::submit`], starting at 0).
    pub first_id: u64,
    /// Number of requests served.
    pub rows: usize,
    /// Raw scores, `rows × d` row-major, in submission order.
    pub scores: Vec<f32>,
    /// Simulated completion time of the batch kernel.
    pub completed_ns: f64,
}

/// Latency/throughput summary over everything served so far.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeStats {
    /// Requests served.
    pub served: u64,
    /// Batches flushed.
    pub batches: u64,
    /// Median request latency, simulated ns.
    pub p50_ns: f64,
    /// 90th-percentile latency.
    pub p90_ns: f64,
    /// 99th-percentile latency.
    pub p99_ns: f64,
    /// Worst request latency.
    pub max_ns: f64,
    /// Served rows per simulated second (first arrival → last
    /// completion).
    pub throughput_rps: f64,
}

/// Micro-batching server over a resident [`DeviceEnsemble`].
pub struct BatchServer {
    ens: DeviceEnsemble,
    /// Next model version mid-upload on the copy stream, and the fence
    /// marking its transfer + checksum pass complete. Swapped in by the
    /// first flush that runs after staging.
    staged: Option<(DeviceEnsemble, Event)>,
    cfg: BatchConfig,
    /// Flattened pending rows (`pending × m`).
    rows: Vec<f32>,
    arrivals: Vec<f64>,
    /// Feature width, fixed by the first submission.
    m: Option<usize>,
    next_id: u64,
    batches: u64,
    latencies: Vec<f64>,
    first_arrival: Option<f64>,
    last_arrival: f64,
    last_completion: f64,
}

impl BatchServer {
    /// Front `ens` with the given micro-batching policy. A degenerate
    /// policy — zero batch size, or a NaN/negative deadline — is a
    /// [`ConfigError`], never a panic: serving configs arrive from
    /// operators, not source code.
    pub fn new(ens: DeviceEnsemble, cfg: BatchConfig) -> Result<Self, ConfigError> {
        if cfg.max_batch == 0 {
            return Err(ConfigError::from(
                "max_batch must be positive (0 would never flush)".to_string(),
            ));
        }
        if cfg.max_delay_ns.is_nan() || cfg.max_delay_ns < 0.0 {
            return Err(ConfigError::from(format!(
                "max_delay_ns must be non-negative (got {})",
                cfg.max_delay_ns
            )));
        }
        Ok(BatchServer {
            ens,
            staged: None,
            cfg,
            rows: Vec::new(),
            arrivals: Vec::new(),
            m: None,
            next_id: 0,
            batches: 0,
            latencies: Vec::new(),
            first_arrival: None,
            last_arrival: 0.0,
            last_completion: 0.0,
        })
    }

    /// The resident ensemble.
    pub fn ensemble(&self) -> &DeviceEnsemble {
        &self.ens
    }

    /// Stage a new model version behind the live one: the SoA upload
    /// and its checksum pass run on the copy stream, overlapping any
    /// batches still flushing on the default stream instead of stalling
    /// them. The swap is non-blocking: the first flush whose trigger
    /// finds the upload complete on the timeline serves the new
    /// version, and earlier flushes keep serving the live one.
    /// Re-staging before the swap replaces the pending version. The new
    /// ensemble must keep the live output dimension — scores of
    /// in-flight and future requests share one shape.
    pub fn stage(&mut self, ens: &CompiledEnsemble) -> Result<(), ConfigError> {
        if ens.d() != self.ens.d() {
            return Err(ConfigError::from(format!(
                "staged model changes the output dimension ({} -> {})",
                self.ens.d(),
                ens.d()
            )));
        }
        let device = self.ens.device().clone();
        let _scope = device.prof_scope("serve_stage", Some(self.batches));
        // The copy stream is born idle: fence it to "now" so the upload
        // cannot book before the work already on the timeline.
        device.wait_event(UPLOAD_STREAM, device.record_event(0));
        let staged = DeviceEnsemble::upload_on(device.clone(), ens, UPLOAD_STREAM);
        let ready = device.record_event(UPLOAD_STREAM);
        self.staged = Some((staged, ready));
        Ok(())
    }

    /// Submit one row arriving at `arrival_ns` (simulated; must be
    /// monotone non-decreasing across calls). Returns any batches the
    /// arrival triggered — at most one deadline flush of older requests
    /// plus, if this row filled the batch, the flush containing it.
    pub fn submit(&mut self, arrival_ns: f64, row: &[f32]) -> Vec<ServedBatch> {
        assert!(
            arrival_ns >= self.last_arrival,
            "arrivals must be monotone: {arrival_ns} < {}",
            self.last_arrival
        );
        let m = *self.m.get_or_insert(row.len());
        assert_eq!(row.len(), m, "feature width changed between submissions");
        self.last_arrival = arrival_ns;
        let mut served = Vec::new();
        if let Some(&oldest) = self.arrivals.first() {
            if arrival_ns - oldest >= self.cfg.max_delay_ns {
                served.push(self.flush_at(oldest + self.cfg.max_delay_ns));
            }
        }
        self.first_arrival.get_or_insert(arrival_ns);
        self.rows.extend_from_slice(row);
        self.arrivals.push(arrival_ns);
        self.next_id += 1;
        if let Some(tel) = self.ens.device().telemetry() {
            // Observer only: the queue state is already decided.
            tel.counter_inc("serve.requests_total");
            tel.gauge_set("serve.queue_depth", self.arrivals.len() as f64);
        }
        if self.arrivals.len() >= self.cfg.max_batch {
            served.push(self.flush_at(arrival_ns));
        }
        served
    }

    /// Flush any pending requests immediately (e.g. at shutdown or an
    /// external deadline tick). No-op when nothing is pending.
    pub fn flush(&mut self) -> Option<ServedBatch> {
        if self.arrivals.is_empty() {
            return None;
        }
        Some(self.flush_at(self.last_arrival))
    }

    /// Run the pending batch as one kernel, stamped at `trigger_ns`.
    fn flush_at(&mut self, trigger_ns: f64) -> ServedBatch {
        let device = self.ens.device().clone();
        device.advance_to(trigger_ns);
        // Non-blocking model swap: a flush that finds the staged upload
        // already complete on the timeline serves the new version;
        // earlier flushes keep serving the live one while the copy
        // stream drains behind them.
        if let Some((_, ready)) = &self.staged {
            if ready.ns() <= device.stream_now(0) {
                let (staged, ready) = self.staged.take().expect("staged upload present");
                device.wait_event(0, ready);
                self.ens = staged;
            }
        }
        let _scope = device.prof_scope("serve_batch", Some(self.batches));
        let k = self.arrivals.len();
        let m = self.m.expect("flush_at requires pending rows");
        let feats = DenseMatrix::new(k, m, std::mem::take(&mut self.rows));
        let scores = self.ens.predict(self.cfg.mode, &feats);
        let completed_ns = device.now_ns();
        for &arrival in &self.arrivals {
            self.latencies.push(completed_ns - arrival);
        }
        if let Some(tel) = device.telemetry() {
            // Latency observations feed the registry histogram; the
            // nearest-rank percentiles in `stats()` stay the source of
            // truth and are unaffected.
            tel.counter_inc("serve.batches_total");
            tel.gauge_set("serve.queue_depth", 0.0);
            tel.gauge_set(
                "serve.batch_fill_ratio",
                k as f64 / self.cfg.max_batch as f64,
            );
            for &arrival in &self.arrivals {
                tel.hist_observe("serve.latency_ns", completed_ns - arrival);
            }
        }
        self.arrivals.clear();
        self.batches += 1;
        self.last_completion = completed_ns;
        ServedBatch {
            first_id: self.next_id - k as u64,
            rows: k,
            scores,
            completed_ns,
        }
    }

    /// Latency percentiles (nearest-rank over all served requests) and
    /// throughput from first arrival to last completion.
    pub fn stats(&self) -> ServeStats {
        let mut sorted = self.latencies.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let pct = |q: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        let served = self.latencies.len() as u64;
        let span_ns = self.last_completion - self.first_arrival.unwrap_or(0.0);
        ServeStats {
            served,
            batches: self.batches,
            p50_ns: pct(0.50),
            p90_ns: pct(0.90),
            p99_ns: pct(0.99),
            max_ns: sorted.last().copied().unwrap_or(0.0),
            throughput_rps: if served > 0 && span_ns > 0.0 {
                served as f64 / span_ns * 1e9
            } else {
                0.0
            },
        }
    }
}
