//! Batched, device-charged serving of compiled ensembles.
//!
//! Training produces a [`crate::compiled::CompiledEnsemble`]; this
//! module is the inference side of the paper's §3.4.2 story at serving
//! time, following the SoA-tree + batched-traversal recipe of the
//! XGBoost GPU paper (Mitchell et al., 2018) in the d-dimensional-leaf
//! setting of GBDT-MO (Zhang & Jung, 2020):
//!
//! 1. [`DeviceEnsemble::upload`] copies the ensemble to the device as
//!    concatenated structure-of-arrays buffers (a charged H2D transfer;
//!    resident bytes match [`crate::memory::estimate_serving_bytes`]);
//! 2. the traversal kernels — `predict_compiled_instance`,
//!    `predict_compiled_tree` + `predict_reduce` — charge
//!    [`gpusim::Phase::Serve`] with costs derived from the *real*
//!    per-row traversal depths and leaf-gather patterns of the batch,
//!    not a flat per-node guess;
//! 3. a [`BatchServer`] fronts the device: single-row submissions are
//!    micro-batched up to a configurable size/deadline, and per-request
//!    latency / throughput percentiles come out of the simulated clock.
//!
//! Outputs are bit-identical to [`crate::model::Model::predict`] in
//! every mode and batch size: all paths accumulate `base + t₀ + t₁ + …`
//! per element in the same order.

mod batch;
mod soa;
mod trace;

pub use batch::{BatchConfig, BatchServer, ServeStats, ServedBatch};
pub use soa::DeviceEnsemble;
