//! Sanitizer wiring for the serving kernels.
//!
//! Mirrors [`crate::sanitize`]: when a sanitizer is attached to the
//! device, the traversal each serving kernel implies is *declared* —
//! thread coordinates and the SoA-array offsets the walk actually
//! touches — so racecheck can verify the claimed access pattern
//! (per-row score writes disjoint, per-tree partials disjoint, reduce
//! reads them all). Declarations are deterministically sampled and
//! never charge the time ledger: serving with the sanitizer attached is
//! bit-identical in results and charges (regression-tested in
//! `crates/core/tests/serving.rs`).

use crate::sanitize::{sample_stride, MAX_TRACE_INSTANCES, MAX_TRACE_OUTPUTS};
use crate::serve::soa::SoaView;
use gbdt_data::DenseMatrix;
use gpusim::sanitize::KernelScope;
use gpusim::{AccessKind, Device, MemSpace, ThreadCtx};

/// Max trees whose traversals are declared per (sampled) row.
pub(crate) const MAX_TRACE_TREES: usize = 4;

/// Register the resident SoA arrays with a kernel scope; returns the
/// buffer ids in declaration order (feature, threshold, left, right,
/// leaf_values, rows, out).
fn register_soa(
    scope: &KernelScope<'_>,
    view: &SoaView<'_>,
    features: &DenseMatrix,
    out_len: usize,
) -> [u32; 7] {
    let nodes = view.feature.len();
    [
        scope.register("soa_feature", nodes, MemSpace::Global, true),
        scope.register("soa_threshold", nodes, MemSpace::Global, true),
        scope.register("soa_left", nodes, MemSpace::Global, true),
        scope.register("soa_right", nodes, MemSpace::Global, true),
        scope.register(
            "soa_leaf_values",
            view.leaf_values.len(),
            MemSpace::Global,
            true,
        ),
        scope.register(
            "batch_rows",
            features.rows() * features.cols(),
            MemSpace::Global,
            true,
        ),
        scope.register("serve_scores", out_len, MemSpace::Global, false),
    ]
}

/// Replay the walk of tree `t` for row `i`, touching every node quad
/// and the tested feature value; returns the reached leaf offset.
#[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(v > t)` routes NaN left
fn touch_walk(
    scope: &KernelScope<'_>,
    ids: &[u32; 7],
    view: &SoaView<'_>,
    features: &DenseMatrix,
    ctx: ThreadCtx,
    i: usize,
    t: usize,
) -> usize {
    let [f_id, t_id, l_id, r_id, ..] = *ids;
    let rows_id = ids[5];
    let row = features.row(i);
    let nb = view.node_base[t];
    let mut at = view.roots[t];
    while at >= 0 {
        let idx = nb + at as usize;
        scope.touch(f_id, ctx, idx, AccessKind::Read);
        scope.touch(t_id, ctx, idx, AccessKind::Read);
        scope.touch(l_id, ctx, idx, AccessKind::Read);
        scope.touch(r_id, ctx, idx, AccessKind::Read);
        let feat = view.feature[idx] as usize;
        scope.touch(rows_id, ctx, i * features.cols() + feat, AccessKind::Read);
        let v = row[feat];
        at = if !(v > view.threshold[idx]) {
            view.left[idx]
        } else {
            view.right[idx]
        };
    }
    view.leaf_base[t] + ((-at - 1) as usize) * view.d
}

/// Declare the instance-level serving kernel: one thread per row walks
/// every (sampled) tree and writes its own `d`-wide score slice —
/// disjoint by construction, which racecheck verifies.
pub(crate) fn trace_predict_instance(device: &Device, view: &SoaView<'_>, features: &DenseMatrix) {
    let Some(san) = device.sanitizer() else {
        return;
    };
    let n = features.rows();
    if n == 0 || view.roots.is_empty() {
        return;
    }
    let scope = san.scope("predict_compiled_instance");
    let ids = register_soa(&scope, view, features, n * view.d);
    let (leaf_id, out_id) = (ids[4], ids[6]);
    for i in sample_stride(n, MAX_TRACE_INSTANCES) {
        let ctx = ThreadCtx::from_global(i, 256);
        for t in sample_stride(view.roots.len(), MAX_TRACE_TREES) {
            let off = touch_walk(&scope, &ids, view, features, ctx, i, t);
            for o in sample_stride(view.d, MAX_TRACE_OUTPUTS) {
                scope.touch(leaf_id, ctx, off + o, AccessKind::Read);
                scope.touch(out_id, ctx, i * view.d + o, AccessKind::Write);
            }
        }
    }
}

/// Declare the tree-level serving kernels: one thread per (row, tree)
/// pair writes its tree's private `n × d` partial, then the reduce
/// kernel reads all partials and writes the final matrix — both
/// write-disjoint.
pub(crate) fn trace_predict_tree(device: &Device, view: &SoaView<'_>, features: &DenseMatrix) {
    let Some(san) = device.sanitizer() else {
        return;
    };
    let n = features.rows();
    let trees = view.roots.len();
    if n == 0 || trees == 0 {
        return;
    }
    let d = view.d;
    {
        let scope = san.scope("predict_compiled_tree");
        let ids = register_soa(&scope, view, features, n * d);
        let leaf_id = ids[4];
        let partials = scope.register("serve_partials", trees * n * d, MemSpace::Global, false);
        for t in sample_stride(trees, MAX_TRACE_TREES) {
            for i in sample_stride(n, MAX_TRACE_INSTANCES) {
                let ctx = ThreadCtx::from_global(t * n + i, 256);
                let off = touch_walk(&scope, &ids, view, features, ctx, i, t);
                for o in sample_stride(d, MAX_TRACE_OUTPUTS) {
                    scope.touch(leaf_id, ctx, off + o, AccessKind::Read);
                    scope.touch(partials, ctx, (t * n + i) * d + o, AccessKind::Write);
                }
            }
        }
    }
    let scope = san.scope("predict_reduce");
    let partials = scope.register("serve_partials", trees * n * d, MemSpace::Global, true);
    let base_id = scope.register("serve_base", d, MemSpace::Global, true);
    let out_id = scope.register("serve_scores", n * d, MemSpace::Global, false);
    for e in sample_stride(n * d, crate::sanitize::MAX_TRACE_ELEMS) {
        let ctx = ThreadCtx::from_global(e, 256);
        scope.touch(base_id, ctx, e % d, AccessKind::Read);
        for t in sample_stride(trees, MAX_TRACE_TREES) {
            scope.touch(partials, ctx, t * n * d + e, AccessKind::Read);
        }
        scope.touch(out_id, ctx, e, AccessKind::Write);
    }
}
