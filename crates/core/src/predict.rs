//! Ensemble inference (paper §3.4.2).
//!
//! Two parallelization schemes, exactly as described: *instance-level*
//! (a thread per instance walks all trees) and *tree-level* (trees are
//! evaluated concurrently and their contributions reduced). Both
//! produce identical raw scores; the tree-level path pays an extra
//! reduction but exposes more parallelism for small batches.

use crate::tree::Tree;
use gbdt_data::DenseMatrix;
use gpusim::cost::KernelCost;
use gpusim::{Device, Phase};
use rayon::prelude::*;

/// Parallelization scheme for inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictMode {
    /// One thread per instance, trees visited sequentially.
    InstanceLevel,
    /// One task per tree, per-tree score deltas reduced afterwards.
    TreeLevel,
}

/// Raw ensemble scores (`n × d`, row-major): `base + Σ_t f_t(x)`.
pub fn predict_raw(
    trees: &[Tree],
    base: &[f32],
    features: &DenseMatrix,
    mode: PredictMode,
) -> Vec<f32> {
    let n = features.rows();
    let d = base.len();
    match mode {
        PredictMode::InstanceLevel => {
            let mut scores = vec![0.0f32; n * d];
            scores.par_chunks_mut(d).enumerate().for_each(|(i, out)| {
                out.copy_from_slice(base);
                let row = features.row(i);
                for t in trees {
                    t.predict_into(row, out);
                }
            });
            scores
        }
        PredictMode::TreeLevel => {
            // Per-tree partial score matrices, reduced in tree order.
            // Every element accumulates `base + t₀ + t₁ + …` — exactly
            // the order the instance path uses (each tree's partial is
            // `0.0 + value`, which is value-preserving in IEEE 754) —
            // so the two modes are bit-identical, not approximately so.
            //
            // Trees are processed in groups of at most `threads`, so at
            // most that many `n × d` partials are live at once: peak
            // memory is `O(threads · n · d)`, not `O(T · n · d)`.
            let mut scores = vec![0.0f32; n * d];
            for out in scores.chunks_mut(d) {
                out.copy_from_slice(base);
            }
            let group = rayon::current_num_threads().max(1);
            for chunk in trees.chunks(group) {
                let partials: Vec<Vec<f32>> = chunk
                    .par_iter()
                    .map(|t| {
                        let mut p = vec![0.0f32; n * d];
                        for i in 0..n {
                            t.predict_into(features.row(i), &mut p[i * d..(i + 1) * d]);
                        }
                        p
                    })
                    .collect();
                for p in partials {
                    for (s, v) in scores.iter_mut().zip(p) {
                        *s += v;
                    }
                }
            }
            scores
        }
    }
}

/// Leaf index of every (instance, tree) pair: `out[i * trees + t]` is
/// the node index of the leaf instance `i` reaches in tree `t` — the
/// "apply" embedding used for GBDT feature transforms (and the paper's
/// observation that instances always terminate in leaves, §3.1.1).
pub fn apply_leaf_indices(trees: &[Tree], features: &DenseMatrix) -> Vec<u32> {
    let n = features.rows();
    let t = trees.len();
    let mut out = vec![0u32; n * t];
    out.par_chunks_mut(t.max(1))
        .enumerate()
        .for_each(|(i, row)| {
            let x = features.row(i);
            for (slot, tree) in trees.iter().enumerate() {
                row[slot] = tree.leaf_for_row(x) as u32;
            }
        });
    out
}

/// Device-charged inference: computes [`predict_raw`] and books the
/// traversal cost (irregular per-node loads at sector granularity).
pub fn predict_on_device(
    device: &Device,
    trees: &[Tree],
    base: &[f32],
    features: &DenseMatrix,
    mode: PredictMode,
) -> Vec<f32> {
    let _scope = device.prof_scope("predict", None);
    let n = features.rows();
    let d = base.len();
    let scores = predict_raw(trees, base, features, mode);
    let total_depth: usize = trees.iter().map(Tree::depth).sum();
    let hops = (n * total_depth.max(1)) as f64;
    let traversal = KernelCost {
        flops: hops * 4.0,
        // Each hop reads a node (~16 B, poorly coalesced → sector)
        // plus the tested feature value; leaves stream d values out.
        dram_bytes: hops * 32.0 + (n * d * 4) as f64,
        launches: match mode {
            PredictMode::InstanceLevel => 1.0,
            PredictMode::TreeLevel => trees.len().max(1) as f64,
        },
        ..Default::default()
    };
    let cost = match mode {
        PredictMode::InstanceLevel => traversal,
        PredictMode::TreeLevel => {
            // The tree-level scheme materializes one `n × d` partial
            // score matrix per tree and reduces them afterwards — the
            // "extra reduction" of §3.4.2. Charge it: each of the
            // `T × n × d` partials is written by its tree's kernel and
            // read back by the reduce kernel, which adds them into the
            // final `n × d` matrix in one extra launch.
            let t = trees.len().max(1) as f64;
            let elems = (n * d) as f64;
            traversal.merged(&KernelCost {
                flops: t * elems,
                dram_bytes: 2.0 * t * elems * 4.0 + elems * 4.0,
                launches: 1.0,
                ..Default::default()
            })
        }
    };
    device.charge_kernel("predict", Phase::Predict, &cost);
    crate::sanitize::trace_predict(device, n, d, total_depth);
    scores
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_trees() -> (Vec<Tree>, DenseMatrix) {
        let mut t1 = Tree::new(2);
        let (l, r) = t1.split_node(0, 0, 0, 0.5);
        t1.set_leaf(l, vec![1.0, 0.0]);
        t1.set_leaf(r, vec![0.0, 1.0]);
        let mut t2 = Tree::new(2);
        let (l, r) = t2.split_node(0, 1, 0, 0.0);
        t2.set_leaf(l, vec![0.5, 0.5]);
        t2.set_leaf(r, vec![-0.5, -0.5]);
        let x = DenseMatrix::from_rows(&[vec![0.0, -1.0], vec![1.0, 1.0]]);
        (vec![t1, t2], x)
    }

    #[test]
    fn instance_level_sums_trees_and_base() {
        let (trees, x) = two_trees();
        let s = predict_raw(&trees, &[10.0, 20.0], &x, PredictMode::InstanceLevel);
        // Row 0: t1 → [1,0], t2 → [0.5,0.5].
        assert_eq!(&s[0..2], &[11.5, 20.5]);
        // Row 1: t1 → [0,1], t2 → [-0.5,-0.5].
        assert_eq!(&s[2..4], &[9.5, 20.5]);
    }

    #[test]
    fn both_modes_agree_bit_exactly() {
        // Both paths accumulate `base + t₀ + t₁ + …` per element in the
        // same order, so agreement is exact — serving-path refactors
        // must not silently reorder the float sum.
        let (trees, x) = two_trees();
        let a = predict_raw(&trees, &[0.25, -3.5], &x, PredictMode::InstanceLevel);
        let b = predict_raw(&trees, &[0.25, -3.5], &x, PredictMode::TreeLevel);
        assert_eq!(a, b);
    }

    #[test]
    fn tree_level_is_bit_exact_beyond_thread_chunks() {
        // More trees than worker threads forces several fold chunks;
        // the chunked reduction must keep the tree-order sum.
        let (seed, x) = two_trees();
        let trees: Vec<Tree> = (0..64).map(|i| seed[i % 2].clone()).collect();
        let a = predict_raw(&trees, &[0.1, 0.2], &x, PredictMode::InstanceLevel);
        let b = predict_raw(&trees, &[0.1, 0.2], &x, PredictMode::TreeLevel);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_ensemble_returns_base() {
        let x = DenseMatrix::from_rows(&[vec![1.0], vec![2.0]]);
        let s = predict_raw(&[], &[3.0], &x, PredictMode::InstanceLevel);
        assert_eq!(s, vec![3.0, 3.0]);
    }

    #[test]
    fn device_charged_prediction_matches_and_charges() {
        let (trees, x) = two_trees();
        let device = Device::rtx4090();
        let a = predict_on_device(&device, &trees, &[0.0, 0.0], &x, PredictMode::InstanceLevel);
        let b = predict_raw(&trees, &[0.0, 0.0], &x, PredictMode::InstanceLevel);
        assert_eq!(a, b);
        assert!(device.summary().by_phase.contains_key(&Phase::Predict));
    }

    #[test]
    fn apply_returns_consistent_leaf_indices() {
        let (trees, x) = two_trees();
        let leaves = apply_leaf_indices(&trees, &x);
        assert_eq!(leaves.len(), 2 * 2);
        for i in 0..x.rows() {
            for (t, tree) in trees.iter().enumerate() {
                assert_eq!(leaves[i * 2 + t] as usize, tree.leaf_for_row(x.row(i)));
                // The index really is a leaf.
                let _ = tree.leaf_value(leaves[i * 2 + t] as usize);
            }
        }
    }

    #[test]
    fn tree_level_mode_charges_strictly_more() {
        // The tree-level scheme pays the `T × n × d` partial-matrix
        // reduction (plus per-tree launches) on top of the traversal,
        // so its simulated time strictly exceeds instance-level.
        let (trees, x) = two_trees();
        assert!(trees.len() > 1, "needs a multi-tree ensemble");
        let d1 = Device::rtx4090();
        let _ = predict_on_device(&d1, &trees, &[0.0, 0.0], &x, PredictMode::InstanceLevel);
        let d2 = Device::rtx4090();
        let _ = predict_on_device(&d2, &trees, &[0.0, 0.0], &x, PredictMode::TreeLevel);
        assert!(
            d2.now_ns() > d1.now_ns(),
            "tree-level {} ns must exceed instance-level {} ns",
            d2.now_ns(),
            d1.now_ns()
        );
    }
}
