//! Gradient sketching on the device (SketchBoost's recipe, brought
//! into the GPU pipeline).
//!
//! The paper shows histogram building dominates GBDT-MO training
//! (67–89 % of total time, Fig. 4) and every histogram kernel scales
//! linearly in the output dimension `d`. SketchBoost (Iosipoi &
//! Vakhrushev, 2022 — the paper's strongest baseline) demonstrates that
//! tree *structure* can be searched on a `k ≪ d` gradient sketch with
//! negligible quality loss. This module reduces the round's `n × d`
//! gradient/Hessian matrix to `n × k` **on the device** (each step a
//! charged kernel), so all downstream histogram, split-search and
//! partition kernels run at effective output dimension `k`; leaf
//! *values* are then refit from the full `d`-dimensional gradients
//! ([`refit_leaves_full_d`]) so predictions stay full-output.
//!
//! The sketch math is kept **bit-for-bit identical** to the CPU-side
//! reference in `crates/baselines::sketchboost::sketch_gradients`
//! (same column-energy accumulation order, same RNG stream, same
//! Box–Muller projection), which lets the differential tests pin the
//! GPU trainer split-for-split against `SketchBoostTrainer`. Only the
//! *charging* differs: instead of one monolithic kernel this module
//! charges the real kernel inventory under [`Phase::Sketch`]:
//!
//! | kernel                  | strategy        | work                         |
//! |-------------------------|-----------------|------------------------------|
//! | `sketch_colnorm`        | TopOutputs      | per-output abs-sum reduction |
//! | `sketch_topk_select`    | TopOutputs      | top-`k` select over `d` keys |
//! | `sketch_sample_cols`    | RandomSampling  | keyed shuffle of `d` columns |
//! | `sketch_projection_gen` | RandomProjection| draw the `d × k` Gaussian    |
//! | `sketch_gather`         | selections      | `n × k` column gather        |
//! | `sketch_projection`     | RandomProjection| GEMM-style `n×d · d×k` pass  |
//!
//! [`refit_leaves_full_d`] afterwards charges one `leaf_refit_full_d`
//! gather-reduce pass under [`Phase::LeafValue`].

use crate::config::{OutputSketch, TrainConfig};
use crate::grad::Gradients;
use crate::grow::GrowResult;
use crate::split::leaf_values;
use gpusim::cost::KernelCost;
use gpusim::{Device, Phase};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// Standard-normal sample via Box–Muller (bit-identical to the
/// baselines reference).
fn normal(rng: &mut ChaCha8Rng) -> f32 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// The per-tree sketch decision: what the *selection* kernels produced
/// and therefore what a multi-GPU group must broadcast before every
/// device can apply the same sketch locally.
#[derive(Debug, Clone, PartialEq)]
pub enum SketchPlan {
    /// `k ≥ d` with a selection strategy: the sketch is the identity
    /// and nothing is charged or broadcast.
    Identity,
    /// Keep exactly these output columns (sorted ascending).
    Columns(Vec<usize>),
    /// Project rows onto `k` Gaussian directions with this row-major
    /// `d × k` matrix (already scaled by `1/√k`).
    Projection {
        /// Row-major `d × k` projection matrix.
        r: Vec<f32>,
        /// Sketch dimension.
        k: usize,
    },
}

impl SketchPlan {
    /// Effective output dimension after applying this plan to
    /// `d`-dimensional gradients.
    pub fn output_dim(&self, d: usize) -> usize {
        match self {
            SketchPlan::Identity => d,
            SketchPlan::Columns(cols) => cols.len(),
            SketchPlan::Projection { k, .. } => *k,
        }
    }

    /// Bytes a multi-GPU group must broadcast so every device holds the
    /// plan: `k` column indices (4 B each) or the `d × k` projection
    /// matrix (4 B per entry). Identity broadcasts nothing.
    pub fn broadcast_bytes(&self, d: usize) -> f64 {
        match self {
            SketchPlan::Identity => 0.0,
            SketchPlan::Columns(cols) => (cols.len() * 4) as f64,
            SketchPlan::Projection { k, .. } => (d * k * 4) as f64,
        }
    }
}

/// Run the *selection* kernels for `sketch` on `device` and return the
/// plan. Charges `sketch_colnorm` + `sketch_topk_select` (TopOutputs),
/// `sketch_sample_cols` (RandomSampling) or `sketch_projection_gen`
/// (RandomProjection) under [`Phase::Sketch`]. Returns
/// [`SketchPlan::Identity`] (charging nothing) when `k ≥ d` with a
/// selection strategy, mirroring the baselines reference.
pub fn plan_sketch(
    device: &Device,
    grads: &Gradients,
    sketch: OutputSketch,
    seed: u64,
) -> SketchPlan {
    let (n, d) = (grads.n, grads.d);
    let Some(k) = sketch.k() else {
        return SketchPlan::Identity;
    };
    let k = k.min(d).max(1);
    if k == d && !matches!(sketch, OutputSketch::RandomProjection(_)) {
        return SketchPlan::Identity;
    }
    // RNG stream identical to baselines::sketchboost::sketch_gradients:
    // created before the strategy dispatch, first drawn by the shuffle
    // (sampling) or the Gaussian matrix (projection).
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    match sketch {
        OutputSketch::None => SketchPlan::Identity,
        OutputSketch::TopOutputs(_) => {
            // Column energies Σ_i |g_ik|, f64-accumulated in ascending
            // instance order (one block per output column on device).
            let mut energy = vec![0.0f64; d];
            for i in 0..n {
                for (e, &gv) in energy.iter_mut().zip(grads.g_row(i)) {
                    *e += gv.abs() as f64;
                }
            }
            device.charge_kernel(
                "sketch_colnorm",
                Phase::Sketch,
                // Read the n×d gradient plane once, write d energies.
                &KernelCost::streaming((n * d) as f64, (n * d * 4 + d * 8) as f64),
            );
            crate::sanitize::trace_sketch_colnorm(device, n, d);
            let mut order: Vec<usize> = (0..d).collect();
            // `total_cmp` is identical to the reference's float compare
            // here: energies are finite non-negative sums of |g|.
            order.sort_by(|&a, &b| energy[b].total_cmp(&energy[a]).then(a.cmp(&b)));
            let mut cols = order[..k].to_vec();
            cols.sort_unstable();
            device.charge_kernel(
                "sketch_topk_select",
                Phase::Sketch,
                // Key sort over d energies + compaction of k indices.
                &KernelCost {
                    flops: d as f64,
                    dram_bytes: (d * 16 + k * 4) as f64,
                    sort_keys: d as f64,
                    launches: 2.0,
                    ..Default::default()
                },
            );
            SketchPlan::Columns(cols)
        }
        OutputSketch::RandomSampling(_) => {
            let mut all: Vec<usize> = (0..d).collect();
            all.shuffle(&mut rng);
            let mut cols = all[..k].to_vec();
            cols.sort_unstable();
            device.charge_kernel(
                "sketch_sample_cols",
                Phase::Sketch,
                // Device-side keyed shuffle: d random keys, sort, keep k.
                &KernelCost {
                    flops: d as f64,
                    dram_bytes: (d * 12 + k * 4) as f64,
                    sort_keys: d as f64,
                    launches: 1.0,
                    ..Default::default()
                },
            );
            SketchPlan::Columns(cols)
        }
        OutputSketch::RandomProjection(_) => {
            let scale = 1.0 / (k as f32).sqrt();
            let r: Vec<f32> = (0..d * k).map(|_| normal(&mut rng) * scale).collect();
            device.charge_kernel(
                "sketch_projection_gen",
                Phase::Sketch,
                // Box–Muller per entry (~8 flops), write the d×k matrix.
                &KernelCost::streaming((d * k) as f64 * 8.0, (d * k * 4) as f64),
            );
            SketchPlan::Projection { r, k }
        }
    }
}

/// Apply `plan` to `grads` on `device`, producing the sketched `n × k`
/// gradient set. Charges `sketch_gather` (column selection) or
/// `sketch_projection` (GEMM-style pass) under [`Phase::Sketch`];
/// [`SketchPlan::Identity`] clones and charges nothing.
pub fn apply_sketch(device: &Device, grads: &Gradients, plan: &SketchPlan) -> Gradients {
    let (n, d) = (grads.n, grads.d);
    match plan {
        SketchPlan::Identity => grads.clone(),
        SketchPlan::Columns(cols) => {
            let k = cols.len();
            let mut g = vec![0.0f32; n * k];
            let mut h = vec![0.0f32; n * k];
            for i in 0..n {
                let grow = grads.g_row(i);
                let hrow = grads.h_row(i);
                for (j, &c) in cols.iter().enumerate() {
                    g[i * k + j] = grow[c];
                    h[i * k + j] = hrow[c];
                }
            }
            charge_apply(device, n, d, plan);
            crate::sanitize::trace_sketch_gather(device, n, d, cols);
            Gradients { g, h, n, d: k }
        }
        SketchPlan::Projection { r, k } => {
            let k = *k;
            let mut g = vec![0.0f32; n * k];
            // Hessians are not linear in the projection; SketchBoost
            // uses the per-instance mean Hessian for every sketched
            // column (exact for MSE where h is constant).
            let mut h = vec![0.0f32; n * k];
            for i in 0..n {
                let grow = grads.g_row(i);
                let hrow = grads.h_row(i);
                let hmean: f32 = hrow.iter().sum::<f32>() / d as f32;
                for j in 0..k {
                    let mut acc = 0.0f32;
                    for (kk, &gv) in grow.iter().enumerate() {
                        acc += gv * r[kk * k + j];
                    }
                    g[i * k + j] = acc;
                    h[i * k + j] = hmean;
                }
            }
            charge_apply(device, n, d, plan);
            crate::sanitize::trace_sketch_projection(device, n, d, k);
            Gradients { g, h, n, d: k }
        }
    }
}

/// Charge the *apply* kernel of `plan` for an `n × d` gradient set
/// without materializing it — used by the multi-GPU trainers to mirror
/// the gather/projection pass on replica devices after the broadcast.
/// Identity charges nothing.
pub fn charge_apply(device: &Device, n: usize, d: usize, plan: &SketchPlan) {
    match plan {
        SketchPlan::Identity => {}
        SketchPlan::Columns(cols) => {
            let k = cols.len();
            device.charge_kernel(
                "sketch_gather",
                Phase::Sketch,
                // Read k gathered columns of g and h, write both n×k
                // planes, read the k column indices once.
                &KernelCost::streaming((n * k * 2) as f64, (n * k * 16 + k * 4) as f64),
            );
        }
        SketchPlan::Projection { k, .. } => {
            device.charge_kernel(
                "sketch_projection",
                Phase::Sketch,
                // Multiply-add over n×d×k plus the Hessian mean pass;
                // read g and h planes, the d×k matrix, write n×k g/h.
                &KernelCost::streaming(
                    (2 * n * d * k + n * d) as f64,
                    (n * d * 8 + n * k * 8 + d * k * 4) as f64,
                ),
            );
        }
    }
}

/// Plan and apply in one step: the single-GPU per-round entry point.
/// Bit-identical gradients to
/// `baselines::sketchboost::sketch_gradients(device, grads, k,
/// strategy, seed)` for the matching strategy.
pub fn sketch_gradients_device(
    device: &Device,
    grads: &Gradients,
    sketch: OutputSketch,
    seed: u64,
) -> Gradients {
    let plan = plan_sketch(device, grads, sketch, seed);
    apply_sketch(device, grads, &plan)
}

/// Replace a sketch-grown tree's `k`-dimensional leaves with the
/// optimal full-`d` values `−G/(H+λ)·lr` of the complete gradients —
/// one gather-reduce pass per leaf (SketchBoost's recipe), charged as
/// `leaf_refit_full_d` under [`Phase::LeafValue`]. Node indices are
/// preserved and `grown.leaf_assignments` is rewritten in place with
/// the refit `d`-dimensional values, so the incremental score update
/// and leaf-routing prediction both see full-output leaves.
pub fn refit_leaves_full_d(
    device: &Device,
    grown: &mut GrowResult,
    full: &Gradients,
    config: &TrainConfig,
) {
    let d = full.d;
    // BTreeMap keeps node→value association in sorted node order; with a
    // HashMap here, any future iteration over `values` would visit leaves in
    // a run-dependent order and break the repo's bit-identity guarantees.
    let mut values: BTreeMap<usize, Vec<f32>> = grown
        .leaf_assignments
        .iter()
        .zip(&grown.leaf_nodes)
        .map(|((instances, _), &node)| {
            let (g, h) = full.sums(instances);
            (
                node,
                leaf_values(&g, &h, config.lambda, config.learning_rate),
            )
        })
        .collect();
    let tree = grown.tree.with_leaf_values(d, |node| {
        values.remove(&node).unwrap_or_else(|| vec![0.0; d])
    });
    grown.tree = tree;
    for ((_, v), &node) in grown.leaf_assignments.iter_mut().zip(&grown.leaf_nodes) {
        *v = grown.tree.leaf_value(node).to_vec();
    }
    let touched: usize = grown.leaf_assignments.iter().map(|(i, _)| i.len()).sum();
    device.charge_kernel(
        "leaf_refit_full_d",
        Phase::LeafValue,
        // Gather-reduce g and h over every resident instance × output,
        // then one divide per (leaf, output).
        &KernelCost::streaming((touched * d * 2) as f64, (touched * d * 8) as f64),
    );
    crate::sanitize::trace_leaf_refit(device, full.n, d, &grown.leaf_assignments);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grads(n: usize, d: usize) -> Gradients {
        Gradients {
            g: (0..n * d).map(|i| ((i * 37 % 23) as f32) - 11.0).collect(),
            h: (0..n * d).map(|i| 1.0 + (i % 5) as f32 * 0.25).collect(),
            n,
            d,
        }
    }

    #[test]
    fn selection_plans_pick_k_sorted_columns() {
        let device = Device::rtx4090();
        let gr = grads(50, 8);
        for s in [OutputSketch::TopOutputs(3), OutputSketch::RandomSampling(3)] {
            let plan = plan_sketch(&device, &gr, s, 7);
            let SketchPlan::Columns(cols) = &plan else {
                panic!("{s:?} must select columns");
            };
            assert_eq!(cols.len(), 3);
            assert!(cols.windows(2).all(|w| w[0] < w[1]), "sorted, unique");
            assert!(cols.iter().all(|&c| c < 8));
            let sk = apply_sketch(&device, &gr, &plan);
            assert_eq!((sk.n, sk.d), (50, 3));
            for i in 0..50 {
                for (j, &c) in cols.iter().enumerate() {
                    assert_eq!(sk.g[i * 3 + j].to_bits(), gr.g_row(i)[c].to_bits());
                    assert_eq!(sk.h[i * 3 + j].to_bits(), gr.h_row(i)[c].to_bits());
                }
            }
        }
    }

    #[test]
    fn top_outputs_keeps_highest_energy_columns() {
        let device = Device::rtx4090();
        let n = 20;
        let d = 4;
        let mut g = vec![0.0f32; n * d];
        for i in 0..n {
            g[i * d] = 0.01;
            g[i * d + 1] = 5.0;
            g[i * d + 3] = 100.0;
        }
        let gr = Gradients {
            g,
            h: vec![1.0; n * d],
            n,
            d,
        };
        let plan = plan_sketch(&device, &gr, OutputSketch::TopOutputs(2), 0);
        assert_eq!(plan, SketchPlan::Columns(vec![1, 3]));
    }

    #[test]
    fn identity_when_k_covers_d_for_selection() {
        let device = Device::rtx4090();
        let gr = grads(10, 4);
        let before = device.now_ns();
        for s in [
            OutputSketch::TopOutputs(4),
            OutputSketch::TopOutputs(9),
            OutputSketch::RandomSampling(4),
            OutputSketch::None,
        ] {
            let plan = plan_sketch(&device, &gr, s, 1);
            assert_eq!(plan, SketchPlan::Identity);
            let sk = apply_sketch(&device, &gr, &plan);
            assert_eq!(sk.g, gr.g);
            assert_eq!(sk.h, gr.h);
        }
        assert_eq!(device.now_ns(), before, "identity must charge nothing");
    }

    #[test]
    fn projection_projects_even_at_full_width() {
        let device = Device::rtx4090();
        let gr = grads(30, 4);
        let plan = plan_sketch(&device, &gr, OutputSketch::RandomProjection(4), 3);
        assert!(matches!(plan, SketchPlan::Projection { k: 4, .. }));
        let sk = apply_sketch(&device, &gr, &plan);
        assert_eq!((sk.n, sk.d), (30, 4));
        // Hessian columns all equal the per-instance mean.
        for i in 0..30 {
            let hmean: f32 = gr.h_row(i).iter().sum::<f32>() / 4.0;
            for j in 0..4 {
                assert_eq!(sk.h[i * 4 + j].to_bits(), hmean.to_bits());
            }
        }
    }

    #[test]
    fn sketch_charges_flow_to_the_sketch_phase() {
        for s in [
            OutputSketch::TopOutputs(2),
            OutputSketch::RandomSampling(2),
            OutputSketch::RandomProjection(2),
        ] {
            let device = Device::rtx4090();
            let gr = grads(40, 6);
            let _ = sketch_gradients_device(&device, &gr, s, 5);
            let sum = device.summary();
            let sk_ns = sum.by_phase.get(&Phase::Sketch).copied().unwrap_or(0.0);
            assert!(sk_ns > 0.0, "{s:?} charged nothing to Phase::Sketch");
            assert!((sk_ns - sum.total_ns).abs() < 1e-9, "{s:?} leaked phases");
        }
    }

    #[test]
    fn broadcast_bytes_match_plan_payload() {
        assert_eq!(SketchPlan::Identity.broadcast_bytes(16), 0.0);
        assert_eq!(SketchPlan::Columns(vec![0, 3, 5]).broadcast_bytes(16), 12.0);
        let p = SketchPlan::Projection {
            r: vec![0.0; 32],
            k: 2,
        };
        assert_eq!(p.broadcast_bytes(16), 128.0);
        assert_eq!(p.output_dim(16), 2);
        assert_eq!(SketchPlan::Identity.output_dim(16), 16);
    }

    #[test]
    fn same_seed_same_plan_different_seed_differs() {
        let device = Device::rtx4090();
        let gr = grads(60, 12);
        let a = plan_sketch(&device, &gr, OutputSketch::RandomSampling(4), 9);
        let b = plan_sketch(&device, &gr, OutputSketch::RandomSampling(4), 9);
        assert_eq!(a, b);
        let c: Vec<SketchPlan> = (0..8)
            .map(|s| plan_sketch(&device, &gr, OutputSketch::RandomSampling(4), s))
            .collect();
        assert!(c.iter().any(|p| *p != a), "seed must matter");
    }
}
