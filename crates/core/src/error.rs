//! Typed failure modes for fault-tolerant training and serving.
//!
//! The chaos contract (`crates/core/tests/chaos.rs`): under any seeded
//! [`gpusim::FaultPlan`], training either completes bit-identical to a
//! fault-free run or returns one of these errors — never a panic.

use crate::config::ConfigError;
use gpusim::GpuFault;

/// A training run that could not be completed.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The configuration failed validation before any kernel ran.
    Config(ConfigError),
    /// A transient kernel fault recurred past the configured
    /// [`crate::RetryPolicy`] budget.
    RetriesExhausted {
        /// Boosting round the retries were burned on (`usize::MAX`
        /// marks the preprocessing stage, before round 0).
        round: usize,
        /// Retries attempted (the policy's `max_retries`).
        attempts: u32,
        /// The last fault observed.
        fault: GpuFault,
    },
    /// The (single) training device was lost; single-device training
    /// cannot degrade, only checkpoint-resume on a fresh device.
    DeviceLost {
        /// Boosting round in flight when the device fell over
        /// (`usize::MAX` marks preprocessing).
        round: usize,
        /// The loss fault.
        fault: GpuFault,
    },
    /// Every device in a multi-GPU group was lost before training
    /// finished.
    AllDevicesLost {
        /// Boosting round in flight when the last device fell over.
        round: usize,
    },
    /// A checkpoint could not be decoded (truncated, corrupt, or
    /// version-incompatible).
    Checkpoint(String),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let round = |r: &usize| -> String {
            if *r == usize::MAX {
                "preprocess".to_string()
            } else {
                format!("round {r}")
            }
        };
        match self {
            TrainError::Config(e) => write!(f, "{e}"),
            TrainError::RetriesExhausted {
                round: r,
                attempts,
                fault,
            } => write!(
                f,
                "retries exhausted after {attempts} attempt(s) at {}: {fault}",
                round(r)
            ),
            TrainError::DeviceLost { round: r, fault } => {
                write!(f, "training device lost at {}: {fault}", round(r))
            }
            TrainError::AllDevicesLost { round: r } => {
                write!(f, "all devices lost at {}", round(r))
            }
            TrainError::Checkpoint(msg) => write!(f, "bad checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Config(e) => Some(e),
            TrainError::RetriesExhausted { fault, .. } | TrainError::DeviceLost { fault, .. } => {
                Some(fault)
            }
            _ => None,
        }
    }
}

impl From<ConfigError> for TrainError {
    fn from(e: ConfigError) -> Self {
        TrainError::Config(e)
    }
}

/// A serving-side failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A resident buffer's checksum no longer matches the digest taken
    /// at upload — ECC-style corruption.
    Corruption {
        /// Label of the corrupted buffer (e.g. `serve_threshold`).
        buffer: &'static str,
        /// Digest recorded at upload.
        expected: u64,
        /// Digest recomputed by [`crate::serve::DeviceEnsemble::verify`].
        actual: u64,
    },
    /// A rejected serving configuration.
    Config(ConfigError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Corruption {
                buffer,
                expected,
                actual,
            } => write!(
                f,
                "resident buffer `{buffer}` corrupted: checksum {actual:#018x} != uploaded {expected:#018x}"
            ),
            ServeError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for ServeError {
    fn from(e: ConfigError) -> Self {
        ServeError::Config(e)
    }
}

/// Bounded-retry policy for transient kernel faults.
///
/// Retried work is *re-charged*: a faulted round's kernels stay on the
/// ledger (the grid ran and trapped) and the redo pays full price
/// again, exactly like re-launching on real hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryPolicy {
    /// Transient-fault retries allowed per boosting round (0 = fail on
    /// the first fault).
    pub max_retries: u32,
}

impl RetryPolicy {
    /// Allow `max_retries` redo attempts per round.
    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy { max_retries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let fault = GpuFault::Transient {
            device: 0,
            kernel: "k".into(),
            charge_index: 7,
        };
        let cases: Vec<(TrainError, &str)> = vec![
            (
                TrainError::Config(ConfigError::from("num_trees must be ≥ 1".to_string())),
                "invalid training configuration",
            ),
            (
                TrainError::RetriesExhausted {
                    round: 3,
                    attempts: 2,
                    fault: fault.clone(),
                },
                "retries exhausted",
            ),
            (
                TrainError::DeviceLost {
                    round: usize::MAX,
                    fault: GpuFault::DeviceLost {
                        device: 1,
                        kernel: "k".into(),
                        charge_index: 9,
                    },
                },
                "preprocess",
            ),
            (TrainError::AllDevicesLost { round: 2 }, "all devices lost"),
            (TrainError::Checkpoint("bad magic".into()), "bad checkpoint"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
        let s = ServeError::Corruption {
            buffer: "serve_feature",
            expected: 1,
            actual: 2,
        };
        assert!(s.to_string().contains("serve_feature"));
        let c = ServeError::from(ConfigError::from("x".to_string()));
        assert!(c.to_string().contains("invalid"));
    }

    #[test]
    fn retry_policy_defaults_to_zero() {
        assert_eq!(RetryPolicy::default().max_retries, 0);
        assert_eq!(RetryPolicy::retries(3).max_retries, 3);
    }
}
