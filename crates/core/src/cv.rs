//! K-fold cross-validation over the GPU trainer.

use crate::config::TrainConfig;
use crate::loss::loss_for_task;
use crate::metrics::{accuracy, rmse};
use crate::trainer::GpuTrainer;
use gbdt_data::{split::kfold_indices, Dataset, Task};
use gpusim::Device;

/// Per-fold and aggregate results of a cross-validation run.
#[derive(Debug, Clone)]
pub struct CvResult {
    /// Metric value of each fold (accuracy for multiclass, RMSE
    /// otherwise — higher-is-better only for accuracy).
    pub fold_metrics: Vec<f64>,
    /// Name of the metric.
    pub metric_name: &'static str,
    /// Mean over folds.
    pub mean: f64,
    /// Sample standard deviation over folds (0 for a single fold).
    pub std: f64,
}

/// Run `k`-fold cross-validation of `config` on `ds`, training each
/// fold on a fresh simulated device.
pub fn cross_validate(ds: &Dataset, config: &TrainConfig, k: usize, seed: u64) -> CvResult {
    let folds = kfold_indices(ds.n(), k, seed);
    let metric_name = match ds.task() {
        Task::MultiClass => "accuracy",
        _ => "rmse",
    };
    let fold_metrics: Vec<f64> = folds
        .into_iter()
        .map(|(train_idx, valid_idx)| {
            let train = ds.subset(&train_idx);
            let valid = ds.subset(&valid_idx);
            let model = GpuTrainer::new(Device::rtx4090(), config.clone()).fit(&train);
            let scores = model.predict(valid.features());
            match ds.task() {
                Task::MultiClass => accuracy(&scores, &valid.labels()),
                Task::MultiRegression => rmse(&scores, valid.targets()),
                Task::MultiLabel => {
                    let loss = loss_for_task(Task::MultiLabel);
                    let mut probs = scores;
                    for row in probs.chunks_mut(valid.d()) {
                        loss.transform_row(row);
                    }
                    rmse(&probs, valid.targets())
                }
            }
        })
        .collect();
    let mean = fold_metrics.iter().sum::<f64>() / fold_metrics.len() as f64;
    let var = if fold_metrics.len() > 1 {
        fold_metrics.iter().map(|m| (m - mean).powi(2)).sum::<f64>()
            / (fold_metrics.len() - 1) as f64
    } else {
        0.0
    };
    CvResult {
        fold_metrics,
        metric_name,
        mean,
        std: var.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt_data::synth::{
        make_classification, make_regression, ClassificationSpec, RegressionSpec,
    };

    fn quick() -> TrainConfig {
        TrainConfig {
            num_trees: 5,
            max_depth: 4,
            max_bins: 32,
            min_instances: 5,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn cv_on_separable_data_scores_high_with_low_variance() {
        let ds = make_classification(&ClassificationSpec {
            instances: 600,
            features: 10,
            classes: 3,
            informative: 8,
            class_sep: 2.5,
            flip_y: 0.0,
            seed: 40,
            ..Default::default()
        });
        let r = cross_validate(&ds, &quick(), 4, 1);
        assert_eq!(r.fold_metrics.len(), 4);
        assert_eq!(r.metric_name, "accuracy");
        assert!(r.mean > 0.8, "mean accuracy {}", r.mean);
        assert!(r.std < 0.15, "fold variance too high: {}", r.std);
    }

    #[test]
    fn cv_reports_rmse_for_regression() {
        let ds = make_regression(&RegressionSpec {
            instances: 400,
            features: 8,
            outputs: 3,
            informative: 6,
            seed: 41,
            ..Default::default()
        });
        let r = cross_validate(&ds, &quick(), 3, 2);
        assert_eq!(r.metric_name, "rmse");
        assert!(r.mean > 0.0 && r.mean.is_finite());
    }

    #[test]
    fn cv_is_deterministic() {
        let ds = make_classification(&ClassificationSpec {
            instances: 300,
            features: 8,
            classes: 3,
            informative: 6,
            seed: 42,
            ..Default::default()
        });
        let a = cross_validate(&ds, &quick(), 3, 7);
        let b = cross_validate(&ds, &quick(), 3, 7);
        assert_eq!(a.fold_metrics, b.fold_metrics);
    }
}
