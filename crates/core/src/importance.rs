//! Feature importance — the interpretability story the paper leads
//! with ("improved predictive performance and interpretability").
//!
//! Two classic estimators over a trained ensemble:
//!
//! * **split count** — how often each feature is chosen;
//! * **cover** — how many training instances flowed through each
//!   feature's splits (requires per-leaf instance counts, so it is
//!   computed from a model plus its training data).
//!
//! Gain-based importance needs the split gains, which the compact
//! [`crate::tree::Tree`] does not retain; [`split_importance`] and
//! [`cover_importance`] cover the standard use cases without bloating
//! the inference representation.

use crate::model::Model;
use crate::tree::{Node, Tree};
use gbdt_data::DenseMatrix;

/// Number of times each feature appears as a split, across the
/// ensemble. Output is `num_features` long.
pub fn split_importance(model: &Model, num_features: usize) -> Vec<u32> {
    let mut counts = vec![0u32; num_features];
    for tree in &model.trees {
        for node in tree.nodes() {
            if let Node::Split { feature, .. } = node {
                counts[*feature as usize] += 1;
            }
        }
    }
    counts
}

/// Normalized split importance (sums to 1 unless the model has no
/// splits at all).
pub fn split_importance_normalized(model: &Model, num_features: usize) -> Vec<f64> {
    let counts = split_importance(model, num_features);
    let total: u32 = counts.iter().sum();
    if total == 0 {
        return vec![0.0; num_features];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

/// Instances flowing through each feature's split nodes when `data`
/// traverses the ensemble (cover importance). Output is
/// `num_features` long.
pub fn cover_importance(model: &Model, data: &DenseMatrix, num_features: usize) -> Vec<u64> {
    let mut cover = vec![0u64; num_features];
    for tree in &model.trees {
        for i in 0..data.rows() {
            walk_cover(tree, data.row(i), &mut cover);
        }
    }
    cover
}

#[allow(clippy::neg_cmp_op_on_partial_ord)] // `!(v > t)` routes NaN left
fn walk_cover(tree: &Tree, row: &[f32], cover: &mut [u64]) {
    let mut at = 0usize;
    loop {
        match &tree.nodes()[at] {
            Node::Leaf { .. } => return,
            Node::Split {
                feature,
                threshold,
                left,
                right,
                ..
            } => {
                cover[*feature as usize] += 1;
                let v = row[*feature as usize];
                at = if !(v > *threshold) { *left } else { *right } as usize;
            }
        }
    }
}

/// Features ranked by split importance, most important first (ties by
/// lower feature index).
pub fn top_features(model: &Model, num_features: usize, k: usize) -> Vec<(u32, u32)> {
    let counts = split_importance(model, num_features);
    let mut order: Vec<(u32, u32)> = counts
        .iter()
        .enumerate()
        .map(|(f, &c)| (f as u32, c))
        .collect();
    order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    order.truncate(k);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TrainConfig;
    use crate::trainer::GpuTrainer;
    use gbdt_data::synth::{make_classification, ClassificationSpec};
    use gpusim::Device;

    /// Informative features first, pure-noise features after: a trained
    /// model must concentrate splits on the informative block.
    fn trained() -> (Model, gbdt_data::Dataset) {
        let ds = make_classification(&ClassificationSpec {
            instances: 800,
            features: 12,
            classes: 3,
            informative: 4, // features 0..4 carry all signal
            class_sep: 2.5,
            flip_y: 0.0,
            seed: 17,
            ..Default::default()
        });
        let cfg = TrainConfig {
            num_trees: 10,
            max_depth: 4,
            max_bins: 32,
            min_instances: 10,
            ..TrainConfig::default()
        };
        (GpuTrainer::new(Device::rtx4090(), cfg).fit(&ds), ds)
    }

    #[test]
    fn informative_features_dominate_split_counts() {
        let (model, _) = trained();
        let imp = split_importance(&model, 12);
        // Per-feature averages: 4 informative features vs 8 noise ones.
        let informative = imp[..4].iter().sum::<u32>() as f64 / 4.0;
        let noise = imp[4..].iter().sum::<u32>() as f64 / 8.0;
        assert!(
            informative > noise * 2.0,
            "avg informative splits {informative} vs avg noise {noise}"
        );
    }

    #[test]
    fn normalized_importance_sums_to_one() {
        let (model, _) = trained();
        let imp = split_importance_normalized(&model, 12);
        let sum: f64 = imp.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(imp.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn cover_importance_counts_traffic() {
        let (model, ds) = trained();
        let cover = cover_importance(&model, ds.features(), 12);
        // The root features see every instance of every tree, so total
        // cover is at least n × trees.
        let total: u64 = cover.iter().sum();
        assert!(total >= (ds.n() * model.num_trees()) as u64);
        let informative: u64 = cover[..4].iter().sum();
        assert!(informative > cover[4..].iter().sum::<u64>());
    }

    #[test]
    fn top_features_are_sorted_and_bounded() {
        let (model, _) = trained();
        let top = top_features(&model, 12, 3);
        assert_eq!(top.len(), 3);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
        assert!(top[0].0 < 4, "best feature should be informative");
    }

    #[test]
    fn empty_model_has_zero_importance() {
        let model = Model {
            trees: vec![],
            base: vec![0.0],
            d: 1,
            task: gbdt_data::Task::MultiRegression,
            config: TrainConfig::default(),
        };
        assert_eq!(split_importance(&model, 5), vec![0; 5]);
        assert_eq!(split_importance_normalized(&model, 5), vec![0.0; 5]);
    }
}
