//! Trained ensembles.

use crate::config::TrainConfig;
use crate::loss::loss_for_task;
use crate::predict::{predict_raw, PredictMode};
use crate::tree::Tree;
use gbdt_data::{DenseMatrix, Task};
use serde::{Deserialize, Serialize};

/// A trained GBDT-MO model: one sequence of trees with `d`-dimensional
/// leaves (paper Fig. 1, right side).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Model {
    /// Boosted trees, in training order.
    pub trees: Vec<Tree>,
    /// Initial score per output (prior).
    pub base: Vec<f32>,
    /// Output dimension.
    pub d: usize,
    /// Task the model was trained for (selects the score transform).
    pub task: Task,
    /// The configuration used for training.
    pub config: TrainConfig,
}

impl Model {
    /// Raw additive scores (`n × d`).
    pub fn predict(&self, features: &DenseMatrix) -> Vec<f32> {
        predict_raw(
            &self.trees,
            &self.base,
            features,
            PredictMode::InstanceLevel,
        )
    }

    /// Task-space predictions: softmax/sigmoid probabilities for
    /// classification tasks, identity for regression.
    pub fn predict_transformed(&self, features: &DenseMatrix) -> Vec<f32> {
        let mut scores = self.predict(features);
        let loss = loss_for_task(self.task);
        for row in scores.chunks_mut(self.d) {
            loss.transform_row(row);
        }
        scores
    }

    /// Argmax class labels (multiclass convenience).
    pub fn predict_labels(&self, features: &DenseMatrix) -> Vec<u32> {
        self.predict(features)
            .chunks(self.d)
            .map(|row| {
                let mut best = (0usize, f32::NEG_INFINITY);
                for (k, &v) in row.iter().enumerate() {
                    if v > best.1 {
                        best = (k, v);
                    }
                }
                best.0 as u32
            })
            .collect()
    }

    /// Compile to the SoA serving form (see [`crate::serve`] for the
    /// device-resident side).
    pub fn compile(&self) -> crate::compiled::CompiledEnsemble {
        crate::compiled::CompiledEnsemble::compile(self)
    }

    /// Total tree count (for the GBDT-MO-vs-SO model-size comparison).
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total leaves across trees.
    pub fn num_leaves(&self) -> usize {
        self.trees.iter().map(Tree::num_leaves).sum()
    }

    /// Approximate model size in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.trees.iter().map(Tree::memory_bytes).sum::<usize>() + self.base.len() * 4
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serialization cannot fail")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }

    /// Resume an interrupted training run from `checkpoint` on a fresh
    /// `device`, against the same dataset: the remaining
    /// `num_trees − completed_trees` rounds replay bit-identically to
    /// an uninterrupted fit (property-tested in
    /// `crates/core/tests/checkpoint_resume.rs`). The trainer is
    /// rebuilt from the checkpoint's embedded config; shape or
    /// consistency mismatches surface as
    /// [`crate::TrainError::Checkpoint`].
    pub fn resume_from(
        device: std::sync::Arc<gpusim::Device>,
        checkpoint: &crate::checkpoint::Checkpoint,
        ds: &gbdt_data::Dataset,
    ) -> Result<crate::trainer::TrainReport, crate::TrainError> {
        let trainer = crate::trainer::GpuTrainer::try_new(device, checkpoint.config.clone())?;
        trainer.try_fit_resumed(ds, checkpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> Model {
        let mut t = Tree::new(2);
        let (l, r) = t.split_node(0, 0, 0, 0.0);
        t.set_leaf(l, vec![2.0, -2.0]);
        t.set_leaf(r, vec![-2.0, 2.0]);
        Model {
            trees: vec![t],
            base: vec![0.0, 0.0],
            d: 2,
            task: Task::MultiClass,
            config: TrainConfig::default(),
        }
    }

    #[test]
    fn predict_and_labels() {
        let m = tiny_model();
        let x = DenseMatrix::from_rows(&[vec![-1.0], vec![1.0]]);
        let s = m.predict(&x);
        assert_eq!(s, vec![2.0, -2.0, -2.0, 2.0]);
        assert_eq!(m.predict_labels(&x), vec![0, 1]);
    }

    #[test]
    fn transformed_scores_are_probabilities() {
        let m = tiny_model();
        let x = DenseMatrix::from_rows(&[vec![-1.0]]);
        let p = m.predict_transformed(&x);
        assert!((p[0] + p[1] - 1.0).abs() < 1e-6);
        assert!(p[0] > 0.9, "softmax of (2,-2) favours class 0: {p:?}");
    }

    #[test]
    fn counters() {
        let m = tiny_model();
        assert_eq!(m.num_trees(), 1);
        assert_eq!(m.num_leaves(), 2);
        assert!(m.memory_bytes() > 0);
    }

    #[test]
    fn json_roundtrip() {
        let m = tiny_model();
        let j = m.to_json();
        let back = Model::from_json(&j).unwrap();
        assert_eq!(m.trees, back.trees);
        assert_eq!(m.base, back.base);
        assert!(Model::from_json("not json").is_err());
    }
}
