//! Histogram building (paper §3.3) — the dominant cost of GBDT-MO
//! training (67–89 % of total time in the paper's Fig. 4).
//!
//! A node histogram aggregates, for every (feature, bin, output), the
//! sums of first and second loss derivatives over the node's instances,
//! plus a per-(feature, bin) instance count. Three kernels produce the
//! identical histogram with different hardware cost profiles:
//!
//! * [`gmem`] — global-memory atomics (§3.3.2);
//! * [`smem`] — shared-memory tiled atomics (§3.3.3);
//! * [`sortreduce`] — sort-and-reduce (§3.3.4);
//!
//! each with and without the warp-level bin-packing optimization
//! (§3.4.1). [`adaptive`] predicts each kernel's cost from the model and
//! picks the cheapest per node — the paper's "dynamically selects the
//! most appropriate histogram building method … based on the dataset
//! characteristics and training stage".
//!
//! All builders share one deterministic functional accumulation
//! ([`accumulate_dense`] / [`accumulate_sparse`]); only the charged cost
//! differs. Histogram **subtraction** (`sibling = parent − child`) is
//! available as an option.

pub mod adaptive;
pub mod gmem;
pub mod smem;
pub mod sortreduce;
pub mod stats;

use crate::config::{HistOptions, HistogramMethod};
use crate::grad::Gradients;
use gbdt_data::BinnedDataset;
use gpusim::cost::KernelCost;
use gpusim::Device;
use rayon::prelude::*;

/// Effective L2 hit rate for gradient rows re-read across feature
/// columns within one histogram kernel. Gradient rows are touched once
/// per feature; caches capture most of the reuse.
pub(crate) const GH_L2_HIT: f64 = 0.92;

/// A node's gradient histogram over a set of features.
///
/// Layout (all contiguous per segment, enabling uniform segmented
/// scans): `g[(f_local*d + k)*bins + b]`, `counts[f_local*bins + b]`.
#[derive(Debug, Clone)]
pub struct NodeHistogram {
    /// Per-(feature, output, bin) gradient sums.
    pub g: Vec<f64>,
    /// Per-(feature, output, bin) Hessian sums.
    pub h: Vec<f64>,
    /// Per-(feature, bin) instance counts.
    pub counts: Vec<u32>,
    /// Number of (local) features covered.
    pub num_features: usize,
    /// Output dimension.
    pub d: usize,
    /// Bin stride (uniform across features).
    pub bins: usize,
}

impl NodeHistogram {
    /// Allocate a zeroed histogram.
    pub fn new(num_features: usize, d: usize, bins: usize) -> Self {
        NodeHistogram {
            g: vec![0.0; num_features * d * bins],
            h: vec![0.0; num_features * d * bins],
            counts: vec![0; num_features * bins],
            num_features,
            d,
            bins,
        }
    }

    /// Zero all accumulators (reuse between nodes, avoiding
    /// reallocation of multi-MB buffers). `fill` lowers to `memset`,
    /// which matters: these buffers are re-zeroed once per node.
    pub fn reset(&mut self) {
        self.g.fill(0.0);
        self.h.fill(0.0);
        self.counts.fill(0);
    }

    /// Flat index of `(f_local, k, b)` into `g`/`h`.
    #[inline]
    pub fn gh_index(&self, f_local: usize, k: usize, b: usize) -> usize {
        (f_local * self.d + k) * self.bins + b
    }

    /// Flat index of `(f_local, b)` into `counts`.
    #[inline]
    pub fn cnt_index(&self, f_local: usize, b: usize) -> usize {
        f_local * self.bins + b
    }

    /// The contiguous `bins`-long gradient segment of `(f_local, k)`.
    pub fn g_segment(&self, f_local: usize, k: usize) -> &[f64] {
        let s = self.gh_index(f_local, k, 0);
        &self.g[s..s + self.bins]
    }

    /// The contiguous `bins`-long Hessian segment of `(f_local, k)`.
    pub fn h_segment(&self, f_local: usize, k: usize) -> &[f64] {
        let s = self.gh_index(f_local, k, 0);
        &self.h[s..s + self.bins]
    }

    /// Replace `self` (a child histogram) by `parent − self`: the
    /// sibling's histogram, obtained without touching instance data.
    pub fn subtract_from(&mut self, parent: &NodeHistogram) {
        assert_eq!(self.g.len(), parent.g.len(), "histogram shape mismatch");
        for (s, p) in self.g.iter_mut().zip(&parent.g) {
            *s = p - *s;
        }
        for (s, p) in self.h.iter_mut().zip(&parent.h) {
            *s = p - *s;
        }
        for (s, p) in self.counts.iter_mut().zip(&parent.counts) {
            *s = p.checked_sub(*s).expect("child count exceeds parent count");
        }
    }

    /// Overwrite `self` with `parent − child` elementwise: the
    /// subtraction trick without cloning either operand (`self` may be
    /// a dirty pooled buffer; every element is written).
    ///
    /// Arithmetic is identical to building `child` and calling
    /// [`NodeHistogram::subtract_from`] — `p - c` per element in the
    /// same order — so results are bit-identical to that path.
    pub fn assign_difference(&mut self, parent: &NodeHistogram, child: &NodeHistogram) {
        assert_eq!(parent.g.len(), child.g.len(), "histogram shape mismatch");
        assert_eq!(self.g.len(), parent.g.len(), "histogram shape mismatch");
        for ((o, p), c) in self.g.iter_mut().zip(&parent.g).zip(&child.g) {
            *o = p - c;
        }
        for ((o, p), c) in self.h.iter_mut().zip(&parent.h).zip(&child.h) {
            *o = p - c;
        }
        for ((o, p), c) in self
            .counts
            .iter_mut()
            .zip(&parent.counts)
            .zip(&child.counts)
        {
            *o = p.checked_sub(*c).expect("child count exceeds parent count");
        }
    }

    /// Total bytes of the accumulators (drives tiling decisions and the
    /// memory reporting in the depth experiment, Fig. 7).
    pub fn memory_bytes(&self) -> usize {
        self.g.len() * 8 + self.h.len() * 8 + self.counts.len() * 4
    }
}

/// Everything a histogram builder needs about the training state.
pub struct HistContext<'a> {
    /// The device charged for the work.
    pub device: &'a Device,
    /// Preprocessed (binned) features.
    pub data: &'a BinnedDataset,
    /// Current-iteration gradients.
    pub grads: &'a Gradients,
    /// Global feature IDs this builder covers (all features on single
    /// GPU; a partition of them per device in multi-GPU mode).
    pub features: &'a [u32],
    /// Uniform bin stride (the configured `max_bins`).
    pub bins: usize,
    /// Pipeline options.
    pub opts: HistOptions,
}

impl HistContext<'_> {
    /// Output dimension.
    pub fn d(&self) -> usize {
        self.grads.d
    }
}

// The level-parallel grower shares one `&HistContext` across worker
// threads ([`accumulate_only`] is charge-free and takes `&self` state
// only). Keep that contract checked at compile time: every field must
// stay `Sync` (the device's ledger is behind a lock already).
const _: fn() = || {
    fn assert_sync<T: Sync>() {}
    assert_sync::<HistContext<'static>>();
};

/// Fraction of (instance, feature) pairs the histogram kernel actually
/// touches: 1.0 on the dense path, the data's non-zero density when the
/// sparsity-aware CSC path is enabled. The sparse path also scales the
/// measured contention (zero-bin collisions vanish when zeros are
/// handled in closed form — an approximation noted in DESIGN.md).
pub(crate) fn density_factor(ctx: &HistContext<'_>) -> f64 {
    if ctx.opts.sparse_aware {
        let total = (ctx.data.n() * ctx.data.m()).max(1);
        (ctx.data.sparse.nnz() as f64 / total as f64).clamp(0.001, 1.0)
    } else {
        1.0
    }
}

/// Reference functional accumulation over the dense binned matrix:
/// deterministic (parallel over features, sequential over instances).
pub fn accumulate_dense(ctx: &HistContext<'_>, idx: &[u32], out: &mut NodeHistogram) {
    let d = ctx.d();
    let bins = ctx.bins;
    debug_assert_eq!(out.d, d);
    debug_assert_eq!(out.bins, bins);
    debug_assert_eq!(out.num_features, ctx.features.len());

    let g = &ctx.grads.g;
    let h = &ctx.grads.h;
    let gh_stride = d * bins;
    out.g
        .par_chunks_mut(gh_stride)
        .zip(out.h.par_chunks_mut(gh_stride))
        .zip(out.counts.par_chunks_mut(bins))
        .enumerate()
        .for_each(|(f_local, ((gh, hh), cnt))| {
            let f = ctx.features[f_local] as usize;
            let col = ctx.data.bins.col(f);
            for &i in idx {
                let i = i as usize;
                let b = col[i] as usize;
                cnt[b] += 1;
                let grow = &g[i * d..(i + 1) * d];
                let hrow = &h[i * d..(i + 1) * d];
                // One bins-sized slice per output: the `chunks_exact`
                // pair hoists the `k * bins` index arithmetic and its
                // bounds checks out of the inner loop while keeping the
                // ascending-`k` f64 accumulation order bit-identical.
                for ((gf, hf), (&gv, &hv)) in gh
                    .chunks_exact_mut(bins)
                    .zip(hh.chunks_exact_mut(bins))
                    .zip(grow.iter().zip(hrow.iter()))
                {
                    gf[b] += gv as f64;
                    hf[b] += hv as f64;
                }
            }
        });
}

/// Sparsity-aware accumulation (paper §3.2's CSC storage): explicit
/// entries accumulate individually; each feature's implicit-zero bin
/// receives the node remainder `node_totals − Σ explicit` in closed
/// form, so cost scales with non-zeros instead of `n × m`.
///
/// `node_g`/`node_h` are the node's per-output gradient totals and
/// `idx` the node's instances.
pub fn accumulate_sparse(
    ctx: &HistContext<'_>,
    idx: &[u32],
    node_g: &[f64],
    node_h: &[f64],
    out: &mut NodeHistogram,
) {
    let d = ctx.d();
    let bins = ctx.bins;
    let n = ctx.grads.n;

    // Node membership bitmap (one pass over the node's instances).
    let mut in_node = vec![false; n];
    for &i in idx {
        in_node[i as usize] = true;
    }

    let g = &ctx.grads.g;
    let h = &ctx.grads.h;
    let gh_stride = d * bins;
    let sparse = &ctx.data.sparse;
    out.g
        .par_chunks_mut(gh_stride)
        .zip(out.h.par_chunks_mut(gh_stride))
        .zip(out.counts.par_chunks_mut(bins))
        .enumerate()
        .for_each(|(f_local, ((gh, hh), cnt))| {
            let f = ctx.features[f_local] as usize;
            let (rows, ebins) = sparse.col(f);
            let zb = sparse.zero_bin(f) as usize;
            let mut explicit_in_node = 0u32;
            for (&r, &b) in rows.iter().zip(ebins) {
                let i = r as usize;
                if !in_node[i] {
                    continue;
                }
                let b = b as usize;
                explicit_in_node += 1;
                cnt[b] += 1;
                let grow = &g[i * d..(i + 1) * d];
                let hrow = &h[i * d..(i + 1) * d];
                // Same `chunks_exact` pattern as [`accumulate_dense`]:
                // per-output slices instead of `k * bins + b` indexing,
                // identical ascending-`k` accumulation order.
                for ((gf, hf), (&gv, &hv)) in gh
                    .chunks_exact_mut(bins)
                    .zip(hh.chunks_exact_mut(bins))
                    .zip(grow.iter().zip(hrow.iter()))
                {
                    gf[b] += gv as f64;
                    hf[b] += hv as f64;
                }
            }
            // Implicit entries: everything in the node not explicit here.
            cnt[zb] += idx.len() as u32 - explicit_in_node;
            for ((gf, hf), (&ng, &nh)) in gh
                .chunks_exact_mut(bins)
                .zip(hh.chunks_exact_mut(bins))
                .zip(node_g.iter().zip(node_h.iter()))
            {
                let mut eg = 0.0;
                let mut eh = 0.0;
                for (b, (&gv, &hv)) in gf.iter().zip(hf.iter()).enumerate() {
                    if b != zb {
                        eg += gv;
                        eh += hv;
                    }
                }
                // zero-bin currently holds explicit zero-valued entries
                // accumulated above; add the implicit remainder.
                gf[zb] = ng - eg;
                hf[zb] = nh - eh;
            }
        });
}

/// Resolve the configured method for a node of `node_size` instances
/// (runs the adaptive selector when configured).
pub fn resolve_method(ctx: &HistContext<'_>, node_size: usize) -> HistogramMethod {
    match ctx.opts.method {
        HistogramMethod::Adaptive => adaptive::select_method(ctx, node_size),
        m => m,
    }
}

/// Kernel-cost descriptor of building one node's histogram with
/// `method`, from measured access-pattern statistics.
pub fn method_cost(ctx: &HistContext<'_>, idx: &[u32], method: HistogramMethod) -> KernelCost {
    match method {
        HistogramMethod::GlobalMemory => {
            gmem::cost_descriptor(ctx, idx.len(), &stats::measure(ctx, idx))
        }
        HistogramMethod::SharedMemory => {
            smem::cost_descriptor(ctx, idx.len(), &stats::measure(ctx, idx))
        }
        HistogramMethod::SortReduce => sortreduce::cost_descriptor(ctx, idx.len()),
        HistogramMethod::Adaptive => method_cost(ctx, idx, resolve_method(ctx, idx.len())),
    }
}

/// Charge one node's histogram build with `method` to the device.
pub fn charge_method(ctx: &HistContext<'_>, idx: &[u32], method: HistogramMethod) {
    charge_method_on(ctx, idx, method, 0);
}

/// [`charge_method`] issued on a specific stream, so sibling-node fresh
/// builds of one level can overlap on the timeline. Charged
/// nanoseconds, sanitizer traces, and profiler aggregates are identical
/// regardless of stream; only start timestamps move.
pub fn charge_method_on(
    ctx: &HistContext<'_>,
    idx: &[u32],
    method: HistogramMethod,
    stream: usize,
) {
    match method {
        HistogramMethod::GlobalMemory => gmem::charge_on(ctx, idx, stream),
        HistogramMethod::SharedMemory => smem::charge_on(ctx, idx, stream),
        HistogramMethod::SortReduce => sortreduce::charge_on(ctx, idx, stream),
        HistogramMethod::Adaptive => {
            // Scope the selector so adaptive picks show up as nested
            // `hist_adaptive/hist_*` paths in the profile.
            let _scope = ctx.device.prof_scope("hist_adaptive", None);
            charge_method_on(ctx, idx, resolve_method(ctx, idx.len()), stream)
        }
    }
}

/// Build one node's histogram with the configured method, charging the
/// device. Returns the method actually used (after adaptive selection).
///
/// `node_g`/`node_h` are the node's per-output totals (required by the
/// sparse path and by adaptive prediction).
pub fn build_node_histogram(
    ctx: &HistContext<'_>,
    idx: &[u32],
    node_g: &[f64],
    node_h: &[f64],
    out: &mut NodeHistogram,
) -> HistogramMethod {
    let method = resolve_method(ctx, idx.len());
    accumulate_only(ctx, idx, node_g, node_h, out);
    charge_method(ctx, idx, method);
    method
}

/// Functional accumulation without any device charge (the charging
/// policy — immediate vs stream-batched — is the caller's).
pub fn accumulate_only(
    ctx: &HistContext<'_>,
    idx: &[u32],
    node_g: &[f64],
    node_h: &[f64],
    out: &mut NodeHistogram,
) {
    out.reset();
    if ctx.opts.sparse_aware {
        accumulate_sparse(ctx, idx, node_g, node_h, out);
    } else {
        accumulate_dense(ctx, idx, out);
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::loss::MseLoss;
    use gbdt_data::synth::{make_classification, ClassificationSpec};
    use gbdt_data::Dataset;

    /// A small deterministic fixture: dataset, binned view, gradients.
    pub fn fixture(n: usize, m: usize, d: usize, seed: u64) -> (Dataset, BinnedDataset, Gradients) {
        fixture_with_sparsity(n, m, d, seed, 0.4)
    }

    /// Fixture over fully dense features (no zero-bin skew).
    pub fn fixture_dense(
        n: usize,
        m: usize,
        d: usize,
        seed: u64,
    ) -> (Dataset, BinnedDataset, Gradients) {
        fixture_with_sparsity(n, m, d, seed, 0.0)
    }

    /// Fixture with an explicit zero fraction in the features.
    pub fn fixture_with_sparsity(
        n: usize,
        m: usize,
        d: usize,
        seed: u64,
        sparsity: f64,
    ) -> (Dataset, BinnedDataset, Gradients) {
        let ds = make_classification(&ClassificationSpec {
            instances: n,
            features: m,
            classes: d.max(2),
            informative: (m / 2).max(1),
            sparsity,
            seed,
            ..Default::default()
        });
        let binned = BinnedDataset::build(ds.features(), 32);
        let device = Device::rtx4090();
        let scores = vec![0.0f32; n * ds.d()];
        let grads =
            crate::grad::compute_gradients(&device, &MseLoss, &scores, ds.targets(), n, ds.d());
        (ds, binned, grads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use test_support::fixture;

    fn ctx<'a>(
        device: &'a Device,
        data: &'a BinnedDataset,
        grads: &'a Gradients,
        features: &'a [u32],
        opts: HistOptions,
    ) -> HistContext<'a> {
        HistContext {
            device,
            data,
            grads,
            features,
            bins: 32,
            opts,
        }
    }

    #[test]
    fn histogram_totals_match_node_sums() {
        let (_, data, grads) = fixture(200, 6, 3, 1);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..6).collect();
        let c = ctx(&device, &data, &grads, &features, HistOptions::default());
        let idx: Vec<u32> = (0..200).collect();
        let mut out = NodeHistogram::new(6, grads.d, 32);
        accumulate_dense(&c, &idx, &mut out);

        let (node_g, node_h) = grads.sums(&idx);
        for f in 0..6 {
            // Counts per feature sum to node size.
            let cnt: u32 = out.counts[f * 32..(f + 1) * 32].iter().sum();
            assert_eq!(cnt as usize, idx.len());
            for k in 0..grads.d {
                let sg: f64 = out.g_segment(f, k).iter().sum();
                let sh: f64 = out.h_segment(f, k).iter().sum();
                assert!(
                    (sg - node_g[k]).abs() < 1e-6,
                    "f={f} k={k}: {sg} vs {}",
                    node_g[k]
                );
                assert!((sh - node_h[k]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn sparse_accumulation_matches_dense() {
        let (_, data, grads) = fixture(300, 8, 3, 2);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..8).collect();
        let c = ctx(&device, &data, &grads, &features, HistOptions::default());
        // A scattered subset of instances, as after several splits.
        let idx: Vec<u32> = (0..300).filter(|i| i % 3 != 1).collect();
        let (node_g, node_h) = grads.sums(&idx);

        let mut dense = NodeHistogram::new(8, grads.d, 32);
        accumulate_dense(&c, &idx, &mut dense);
        let mut sparse = NodeHistogram::new(8, grads.d, 32);
        accumulate_sparse(&c, &idx, &node_g, &node_h, &mut sparse);

        assert_eq!(dense.counts, sparse.counts);
        for (a, b) in dense.g.iter().zip(&sparse.g) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        for (a, b) in dense.h.iter().zip(&sparse.h) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn subtraction_reconstructs_sibling() {
        let (_, data, grads) = fixture(150, 5, 2, 3);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..5).collect();
        let c = ctx(&device, &data, &grads, &features, HistOptions::default());

        let all: Vec<u32> = (0..150).collect();
        let left: Vec<u32> = (0..150).filter(|i| i % 2 == 0).collect();
        let right: Vec<u32> = (0..150).filter(|i| i % 2 == 1).collect();

        let mut parent = NodeHistogram::new(5, grads.d, 32);
        accumulate_dense(&c, &all, &mut parent);
        let mut derived = NodeHistogram::new(5, grads.d, 32);
        accumulate_dense(&c, &left, &mut derived);
        derived.subtract_from(&parent); // now = parent − left = right

        let mut direct = NodeHistogram::new(5, grads.d, 32);
        accumulate_dense(&c, &right, &mut direct);
        assert_eq!(derived.counts, direct.counts);
        for (a, b) in derived.g.iter().zip(&direct.g) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn all_methods_build_identical_histograms() {
        let (_, data, grads) = fixture(250, 6, 4, 4);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..6).collect();
        let idx: Vec<u32> = (0..250).collect();
        let (node_g, node_h) = grads.sums(&idx);

        let mut results = Vec::new();
        for method in [
            HistogramMethod::GlobalMemory,
            HistogramMethod::SharedMemory,
            HistogramMethod::SortReduce,
            HistogramMethod::Adaptive,
        ] {
            let opts = HistOptions {
                method,
                ..HistOptions::default()
            };
            let c = ctx(&device, &data, &grads, &features, opts);
            let mut out = NodeHistogram::new(6, grads.d, 32);
            let _ = build_node_histogram(&c, &idx, &node_g, &node_h, &mut out);
            results.push(out);
        }
        for r in &results[1..] {
            assert_eq!(results[0].counts, r.counts);
            assert_eq!(results[0].g, r.g); // same accumulation → bitwise equal
            assert_eq!(results[0].h, r.h);
        }
    }

    #[test]
    fn reset_allows_buffer_reuse() {
        let mut h = NodeHistogram::new(2, 2, 8);
        h.g[5] = 1.0;
        h.counts[3] = 7;
        h.reset();
        assert!(h.g.iter().all(|&x| x == 0.0));
        assert!(h.counts.iter().all(|&x| x == 0));
    }

    #[test]
    fn memory_bytes_scales_with_outputs() {
        let small = NodeHistogram::new(10, 2, 256);
        let big = NodeHistogram::new(10, 20, 256);
        assert!(big.memory_bytes() > small.memory_bytes() * 5);
    }

    #[test]
    #[should_panic(expected = "child count exceeds parent")]
    fn subtraction_detects_inconsistent_histograms() {
        let mut child = NodeHistogram::new(1, 1, 4);
        child.counts[0] = 5;
        let parent = NodeHistogram::new(1, 1, 4);
        child.subtract_from(&parent);
    }
}
