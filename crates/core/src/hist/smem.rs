//! Shared-memory tiled histogram strategy (paper §3.3.3).
//!
//! Each block accumulates into a private sub-histogram in shared memory
//! (48 KB), then flushes to the global histogram once. The (bins ×
//! outputs) plane rarely fits in 48 KB for multi-output training, so it
//! is tiled: every tile pass re-reads the node's bin IDs but only the
//! tile's output range of gradients ("the tiling parameters — chunk size
//! and bin offset — are computed dynamically per block").
//!
//! Collision replays still happen, but at shared-memory atomic cost —
//! an order of magnitude cheaper than global replays. Without the
//! warp-level optimization, byte-granular bin staging adds a modeled
//! 4-way bank-conflict penalty on the accumulate stream (the paper's
//! "data compression to reduce bank conflicts").

use super::stats::{self, ContentionStats};
use super::HistContext;
use gpusim::cost::KernelCost;
use gpusim::Phase;

/// Bank-conflict degree of byte-granular shared-memory staging without
/// bin packing: four lanes' bytes share each 4-byte bank word.
const UNPACKED_BANK_CONFLICT: f64 = 4.0;

/// Number of tile passes needed to cover the (bins × outputs) plane of
/// one feature in shared memory ((g, h) pairs of f32).
pub fn tile_passes(ctx: &HistContext<'_>) -> usize {
    let p = &ctx.device.model().params;
    let full_bytes = ctx.bins * ctx.d() * 2 * 4;
    full_bytes.div_ceil(p.smem_per_block).max(1)
}

/// Build the kernel-cost descriptor from contention statistics.
pub fn cost_descriptor(ctx: &HistContext<'_>, nn: usize, s: &ContentionStats) -> KernelCost {
    let mf = ctx.features.len();
    let d = ctx.d();
    let p = &ctx.device.model().params;
    let density = super::density_factor(ctx);
    let pairs = nn as f64 * mf as f64 * density;
    let updates = pairs * d as f64 * 2.0;
    let passes = tile_passes(ctx) as f64;

    let (bin_trans, issue_per_pair, aggregation) = if ctx.opts.warp_packing {
        (s.bin_transactions_packed, 1.0, s.packed_aggregation_ratio)
    } else {
        (s.bin_transactions_unpacked, 4.0, 1.0)
    };
    let updates = updates * aggregation;
    // Collision replays at smem cost; plus bank-conflict replays on the
    // unpacked layout.
    let mut smem_replays = s.replay_excess * d as f64 * 2.0 * aggregation * density;
    if !ctx.opts.warp_packing {
        smem_replays += updates * (UNPACKED_BANK_CONFLICT - 1.0) / UNPACKED_BANK_CONFLICT;
    }
    // Flush: one spread (conflict-free) global atomic per histogram slot.
    let flush_atomics = (mf * ctx.bins * d * 2) as f64;

    KernelCost {
        flops: pairs * (2.0 * d as f64 + issue_per_pair) * passes.sqrt(),
        // Bin IDs re-read once per tile pass; gradients read once total
        // (each pass covers a disjoint output range).
        dram_bytes: bin_trans * p.sector_bytes as f64 * passes
            + stats::gh_bytes(nn, mf, d, stats::pair_bytes(ctx))
            + flush_atomics * 4.0,
        smem_atomics: updates,
        smem_atomic_replays: smem_replays,
        gmem_atomics: flush_atomics,
        launches: passes + 1.0, // accumulate passes + flush kernel
        ..Default::default()
    }
}

/// Charge one node's smem histogram build using measured statistics.
pub fn charge(ctx: &HistContext<'_>, idx: &[u32]) {
    charge_on(ctx, idx, 0);
}

/// [`charge`] issued on a specific stream, so sibling-node builds can
/// overlap. The measured statistics and charged nanoseconds are
/// identical regardless of stream; only the start timestamp moves.
pub fn charge_on(ctx: &HistContext<'_>, idx: &[u32], stream: usize) {
    let _scope = ctx.device.prof_scope("hist_smem", None);
    let s = stats::measure(ctx, idx);
    let name = if ctx.opts.warp_packing {
        "hist_smem_packed"
    } else {
        "hist_smem"
    };
    let cost = cost_descriptor(ctx, idx.len(), &s);
    ctx.device
        .stream(stream)
        // lint:allow(canonical_kernel_name): hist_smem/_packed are the shared-memory siblings of hist_gmem/_packed, one char apart by design
        .charge_kernel(name, Phase::Histogram, &cost);
    if let Some(san) = ctx.device.sanitizer() {
        trace(ctx, idx, &san);
    }
}

/// Declare this kernel's access stream to an attached sanitizer:
/// per-block shared-memory tile atomics (intra-warp collisions legal
/// because declared atomic) followed by a spread global-atomic flush.
pub fn trace(ctx: &HistContext<'_>, idx: &[u32], san: &gpusim::sanitize::Sanitizer) {
    let name = if ctx.opts.warp_packing {
        "hist_smem_packed"
    } else {
        "hist_smem"
    };
    crate::sanitize::trace_pair_kernel(san, ctx, idx, name, gpusim::MemSpace::Shared, true);
}

/// Predicted cost (ns) for the adaptive selector.
pub fn estimate_ns(ctx: &HistContext<'_>, node_size: usize) -> f64 {
    let s = stats::expect(ctx, node_size);
    ctx.device
        .model()
        .kernel_ns(&cost_descriptor(ctx, node_size, &s))
}

#[cfg(test)]
mod tests {
    use super::super::test_support::fixture;
    use super::*;
    use crate::config::HistOptions;
    use gpusim::Device;

    fn make_ctx<'a>(
        device: &'a gpusim::Device,
        data: &'a gbdt_data::BinnedDataset,
        grads: &'a crate::grad::Gradients,
        features: &'a [u32],
        packing: bool,
        bins: usize,
    ) -> HistContext<'a> {
        HistContext {
            device,
            data,
            grads,
            features,
            bins,
            opts: HistOptions {
                warp_packing: packing,
                ..HistOptions::default()
            },
        }
    }

    #[test]
    fn tile_passes_grow_with_outputs() {
        let (_, data, grads2) = fixture(100, 4, 2, 1);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..4).collect();
        // 256 bins × 2 outputs × 8 B = 4 KB → 1 pass.
        let ctx = make_ctx(&device, &data, &grads2, &features, true, 256);
        assert_eq!(tile_passes(&ctx), 1);
        // 256 × 100 × 8 = 200 KB → ≥ 5 passes in 48 KB.
        let (_, data100, grads100) = fixture(100, 4, 100, 1);
        let ctx100 = make_ctx(&device, &data100, &grads100, &features, true, 256);
        assert!(tile_passes(&ctx100) >= 4, "got {}", tile_passes(&ctx100));
    }

    #[test]
    fn warp_opt_reduces_smem_cost_substantially() {
        // Fig. 6a: "+wo" gives its biggest wins on the smem path (bank
        // conflicts removed).
        let (_, data, grads) = fixture(1500, 8, 6, 2);
        let features: Vec<u32> = (0..8).collect();
        let idx: Vec<u32> = (0..1500).collect();

        let d1 = Device::rtx4090();
        charge(&make_ctx(&d1, &data, &grads, &features, false, 32), &idx);
        let d2 = Device::rtx4090();
        charge(&make_ctx(&d2, &data, &grads, &features, true, 32), &idx);
        assert!(
            d2.now_ns() < d1.now_ns() * 0.9,
            "+wo {} vs unpacked {}",
            d2.now_ns(),
            d1.now_ns()
        );
    }

    #[test]
    fn smem_beats_gmem_on_large_contended_nodes() {
        // Sparse data → heavy zero-bin collisions → gmem replays costly.
        let (_, data, grads) = fixture(4000, 8, 8, 3);
        let features: Vec<u32> = (0..8).collect();
        let idx: Vec<u32> = (0..4000).collect();

        let dg = Device::rtx4090();
        super::super::gmem::charge(&make_ctx(&dg, &data, &grads, &features, true, 32), &idx);
        let ds = Device::rtx4090();
        charge(&make_ctx(&ds, &data, &grads, &features, true, 32), &idx);
        assert!(
            ds.now_ns() < dg.now_ns(),
            "smem {} should beat gmem {} on contended root",
            ds.now_ns(),
            dg.now_ns()
        );
    }

    #[test]
    fn gmem_beats_smem_on_tiny_nodes() {
        // The flush term (bins × d × 2 global atomics) plus the extra
        // launch dominate for nodes much smaller than the histogram —
        // the training-stage dependence behind the adaptive selector.
        // Dense data: no zero-bin skew inflating gmem replays.
        let (_, data, grads) = super::super::test_support::fixture_dense(4000, 8, 8, 4);
        let features: Vec<u32> = (0..8).collect();
        let device = Device::rtx4090();
        let ctx = make_ctx(&device, &data, &grads, &features, true, 256);
        let small = 40;
        let g = super::super::gmem::estimate_ns(&ctx, small);
        let s = estimate_ns(&ctx, small);
        assert!(
            g < s,
            "gmem {g} should beat smem {s} for {small}-instance nodes"
        );
    }
}
