//! Adaptive histogram-method selection (paper §3.3: "our system
//! dynamically selects the most appropriate histogram building method
//! from multiple optimized approaches based on the dataset
//! characteristics and training stage").
//!
//! Before building a node's histogram, each strategy's cost is predicted
//! from the analytical model with closed-form contention estimates —
//! node size, feature/output counts, bin budget, dataset sparsity — and
//! the cheapest wins. Large contended roots favour shared memory; small
//! deep nodes favour global memory (the smem flush is a fixed cost);
//! sort-and-reduce wins only when contention is extreme relative to the
//! output width.
//!
//! All three predictors price the output dimension at
//! [`HistContext::d()`] = `grads.d` — the *effective* width of the
//! gradient matrix actually handed to the kernels. Under gradient
//! sketching ([`crate::sketch`]) that is `k`, not the model's `d`, so a
//! sketched round's predicted costs shrink automatically and the
//! selector can flip its choice (e.g. sort-and-reduce loses its appeal
//! once the per-key payload drops from `2d` to `2k` floats).

use super::{gmem, smem, sortreduce, HistContext};
use crate::config::HistogramMethod;

/// Predicted cost of every concrete method, in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct MethodCosts {
    /// Global-memory atomics.
    pub gmem_ns: f64,
    /// Shared-memory tiling.
    pub smem_ns: f64,
    /// Sort-and-reduce.
    pub sort_ns: f64,
}

impl MethodCosts {
    /// The cheapest method under these predictions.
    pub fn best(&self) -> HistogramMethod {
        if self.gmem_ns <= self.smem_ns && self.gmem_ns <= self.sort_ns {
            HistogramMethod::GlobalMemory
        } else if self.smem_ns <= self.sort_ns {
            HistogramMethod::SharedMemory
        } else {
            HistogramMethod::SortReduce
        }
    }
}

/// Predict all three methods' costs for a node of `node_size` instances.
pub fn predict_costs(ctx: &HistContext<'_>, node_size: usize) -> MethodCosts {
    MethodCosts {
        gmem_ns: gmem::estimate_ns(ctx, node_size),
        smem_ns: smem::estimate_ns(ctx, node_size),
        sort_ns: sortreduce::estimate_ns(ctx, node_size),
    }
}

/// Select the method to use for a node of `node_size` instances.
pub fn select_method(ctx: &HistContext<'_>, node_size: usize) -> HistogramMethod {
    predict_costs(ctx, node_size).best()
}

/// Declare the access stream of the adaptively-selected concrete
/// method: selection happens exactly as in the charged run, then the
/// winner's own tracer runs, so sanitized adaptive training checks the
/// same kernel mix it charges.
pub fn trace(ctx: &HistContext<'_>, idx: &[u32], san: &gpusim::sanitize::Sanitizer) {
    match select_method(ctx, idx.len()) {
        HistogramMethod::GlobalMemory => gmem::trace(ctx, idx, san),
        HistogramMethod::SharedMemory => smem::trace(ctx, idx, san),
        HistogramMethod::SortReduce => sortreduce::trace(ctx, idx, san),
        HistogramMethod::Adaptive => unreachable!("select_method returns a concrete method"),
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::fixture;
    use super::*;
    use crate::config::HistOptions;
    use gpusim::Device;

    fn make_ctx<'a>(
        device: &'a gpusim::Device,
        data: &'a gbdt_data::BinnedDataset,
        grads: &'a crate::grad::Gradients,
        features: &'a [u32],
        bins: usize,
    ) -> HistContext<'a> {
        HistContext {
            device,
            data,
            grads,
            features,
            bins,
            opts: HistOptions::default(),
        }
    }

    #[test]
    fn selection_is_never_worse_than_either_fixed_choice() {
        let (_, data, grads) = fixture(3000, 8, 8, 1);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..8).collect();
        let ctx = make_ctx(&device, &data, &grads, &features, 256);
        for size in [50, 500, 3000] {
            let c = predict_costs(&ctx, size);
            let best = match c.best() {
                HistogramMethod::GlobalMemory => c.gmem_ns,
                HistogramMethod::SharedMemory => c.smem_ns,
                HistogramMethod::SortReduce => c.sort_ns,
                HistogramMethod::Adaptive => unreachable!(),
            };
            assert!(best <= c.gmem_ns && best <= c.smem_ns && best <= c.sort_ns);
        }
    }

    #[test]
    fn stage_dependence_small_nodes_prefer_gmem() {
        // With a 256-bin × d histogram, tiny nodes must avoid the smem
        // flush (a fixed bins×d×2 global-atomic cost).
        let (_, data, grads) = fixture(4000, 8, 8, 2);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..8).collect();
        let ctx = make_ctx(&device, &data, &grads, &features, 256);
        assert_eq!(select_method(&ctx, 30), HistogramMethod::GlobalMemory);
    }

    #[test]
    fn contended_roots_prefer_smem() {
        // A large sparse root with many outputs: zero-bin collisions
        // make global atomics replay-heavy.
        let (_, data, grads) = fixture(4000, 8, 8, 3);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..8).collect();
        let ctx = make_ctx(&device, &data, &grads, &features, 32);
        assert_eq!(select_method(&ctx, 4000), HistogramMethod::SharedMemory);
    }

    #[test]
    fn costs_are_finite_for_degenerate_nodes() {
        let (_, data, grads) = fixture(100, 4, 2, 4);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..4).collect();
        let ctx = make_ctx(&device, &data, &grads, &features, 32);
        let c = predict_costs(&ctx, 0);
        assert!(c.gmem_ns.is_finite() && c.smem_ns.is_finite() && c.sort_ns.is_finite());
    }

    #[test]
    fn sketched_rounds_price_histograms_at_effective_d_k() {
        // The cost model reads the output width from `ctx.grads.d`, so a
        // round trained on a k-column gradient sketch must predict
        // strictly cheaper histograms for every method — the mechanism
        // behind the `repro bench --sketch` speedups.
        use crate::config::OutputSketch;
        use crate::sketch::{apply_sketch, plan_sketch};
        let (_, data, grads) = fixture(3000, 8, 16, 5);
        let device = Device::rtx4090();
        let plan = plan_sketch(&device, &grads, OutputSketch::TopOutputs(4), 11);
        let sketched = apply_sketch(&device, &grads, &plan);
        assert_eq!(sketched.d, 4);
        let features: Vec<u32> = (0..8).collect();
        let full = make_ctx(&device, &data, &grads, &features, 64);
        let thin = make_ctx(&device, &data, &sketched, &features, 64);
        assert_eq!(full.d(), 16);
        assert_eq!(thin.d(), 4);
        for size in [200, 3000] {
            let cf = predict_costs(&full, size);
            let ct = predict_costs(&thin, size);
            assert!(
                ct.gmem_ns < cf.gmem_ns,
                "gmem {} !< {}",
                ct.gmem_ns,
                cf.gmem_ns
            );
            assert!(
                ct.smem_ns < cf.smem_ns,
                "smem {} !< {}",
                ct.smem_ns,
                cf.smem_ns
            );
            assert!(
                ct.sort_ns < cf.sort_ns,
                "sort {} !< {}",
                ct.sort_ns,
                cf.sort_ns
            );
        }
    }
}
