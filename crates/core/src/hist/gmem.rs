//! Global-memory histogram strategy (paper §3.3.2).
//!
//! One simulated thread per (instance, feature) pair: fetch the bin ID,
//! then `atomicAdd` the instance's `d` gradient and `d` Hessian values
//! into the global histogram. Simple and launch-cheap, but every update
//! is a global atomic: intra-warp bin collisions serialize into replays,
//! so skewed bin distributions (sparse data funnelling into the zero
//! bin) degrade it sharply — the motivation for the other strategies.

use super::stats::{self, ContentionStats};
use super::HistContext;
use gpusim::cost::KernelCost;
use gpusim::Phase;

/// Build the kernel-cost descriptor from contention statistics.
pub fn cost_descriptor(ctx: &HistContext<'_>, nn: usize, s: &ContentionStats) -> KernelCost {
    let mf = ctx.features.len();
    let d = ctx.d();
    let p = &ctx.device.model().params;
    // Sparsity-aware kernels (§3.2) visit only CSC-present entries and
    // fill the implicit-zero bin in closed form, so the per-pair work
    // scales with the data's density (plus one zero-bin pass per
    // (feature, output), negligible against the entry stream).
    let density = super::density_factor(ctx);
    let pairs = nn as f64 * mf as f64 * density;
    let updates = pairs * d as f64 * 2.0; // g and h per output

    let (bin_trans, issue_per_pair, aggregation) = if ctx.opts.warp_packing {
        // Packed: one u32 serves 4 instances, and each thread
        // pre-aggregates same-bin contributions of its 4 instances in
        // registers before issuing atomics.
        (s.bin_transactions_packed, 1.0, s.packed_aggregation_ratio)
    } else {
        // Byte-granular loads: 4× the load instructions for the same data.
        (s.bin_transactions_unpacked, 4.0, 1.0)
    };

    KernelCost {
        flops: pairs * (2.0 * d as f64 + issue_per_pair),
        dram_bytes: bin_trans * p.sector_bytes as f64
            + stats::gh_bytes(nn, mf, d, stats::pair_bytes(ctx)),
        gmem_atomics: updates * aggregation,
        gmem_atomic_replays: s.replay_excess * d as f64 * 2.0 * aggregation * density,
        launches: 1.0,
        ..Default::default()
    }
}

/// Charge one node's gmem histogram build using measured statistics.
pub fn charge(ctx: &HistContext<'_>, idx: &[u32]) {
    charge_on(ctx, idx, 0);
}

/// [`charge`] issued on a specific stream, so sibling-node builds can
/// overlap. The measured statistics and charged nanoseconds are
/// identical regardless of stream; only the start timestamp moves.
pub fn charge_on(ctx: &HistContext<'_>, idx: &[u32], stream: usize) {
    let _scope = ctx.device.prof_scope("hist_gmem", None);
    let s = stats::measure(ctx, idx);
    let name = if ctx.opts.warp_packing {
        "hist_gmem_packed"
    } else {
        "hist_gmem"
    };
    ctx.device.stream(stream).charge_kernel(
        name,
        Phase::Histogram,
        &cost_descriptor(ctx, idx.len(), &s),
    );
    if let Some(san) = ctx.device.sanitizer() {
        trace(ctx, idx, &san);
    }
}

/// Declare this kernel's access stream to an attached sanitizer: one
/// thread per (instance, feature) pair issuing *declared-atomic*
/// global-memory updates, which racecheck verifies rather than trusts.
pub fn trace(ctx: &HistContext<'_>, idx: &[u32], san: &gpusim::sanitize::Sanitizer) {
    let name = if ctx.opts.warp_packing {
        "hist_gmem_packed"
    } else {
        "hist_gmem"
    };
    crate::sanitize::trace_pair_kernel(san, ctx, idx, name, gpusim::MemSpace::Global, true);
}

/// Predicted cost (ns) for the adaptive selector.
pub fn estimate_ns(ctx: &HistContext<'_>, node_size: usize) -> f64 {
    let s = stats::expect(ctx, node_size);
    ctx.device
        .model()
        .kernel_ns(&cost_descriptor(ctx, node_size, &s))
}

#[cfg(test)]
mod tests {
    use super::super::test_support::fixture;
    use super::*;
    use crate::config::HistOptions;
    use gpusim::Device;

    fn make_ctx<'a>(
        device: &'a gpusim::Device,
        data: &'a gbdt_data::BinnedDataset,
        grads: &'a crate::grad::Gradients,
        features: &'a [u32],
        packing: bool,
    ) -> HistContext<'a> {
        HistContext {
            device,
            data,
            grads,
            features,
            bins: 32,
            opts: HistOptions {
                warp_packing: packing,
                ..HistOptions::default()
            },
        }
    }

    #[test]
    fn charge_accumulates_histogram_phase_time() {
        let (_, data, grads) = fixture(400, 6, 3, 1);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..6).collect();
        let ctx = make_ctx(&device, &data, &grads, &features, true);
        let idx: Vec<u32> = (0..400).collect();
        charge(&ctx, &idx);
        let s = device.summary();
        assert!(s.by_phase.contains_key(&Phase::Histogram));
        assert!(s.total_ns > 0.0);
    }

    #[test]
    fn cost_scales_with_outputs() {
        // Large enough that the d-proportional atomic/replay terms
        // dominate fixed launch overhead.
        let (_, data, grads) = fixture(10_000, 8, 2, 2);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..8).collect();
        let ctx = make_ctx(&device, &data, &grads, &features, true);
        let t_small = estimate_ns(&ctx, 10_000);

        let (_, data8, grads8) = fixture(10_000, 8, 8, 2);
        let ctx8 = make_ctx(&device, &data8, &grads8, &features, true);
        let t_big = estimate_ns(&ctx8, 10_000);
        assert!(
            t_big > t_small * 2.0,
            "d=8 ({t_big}) should cost ≫ d=2 ({t_small})"
        );
    }

    #[test]
    fn warp_packing_does_not_increase_cost() {
        let (_, data, grads) = fixture(500, 6, 4, 3);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..6).collect();
        let idx: Vec<u32> = (0..500).filter(|i| i % 2 == 0).collect();

        let d1 = Device::rtx4090();
        let ctx = make_ctx(&d1, &data, &grads, &features, false);
        charge(&ctx, &idx);
        let d2 = Device::rtx4090();
        let ctx_wo = make_ctx(&d2, &data, &grads, &features, true);
        charge(&ctx_wo, &idx);
        assert!(
            d2.now_ns() <= d1.now_ns(),
            "+wo {} vs {}",
            d2.now_ns(),
            d1.now_ns()
        );
        let _ = device;
    }

    #[test]
    fn estimate_is_positive_and_monotone_in_node_size() {
        let (_, data, grads) = fixture(1000, 5, 3, 4);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..5).collect();
        let ctx = make_ctx(&device, &data, &grads, &features, true);
        let t100 = estimate_ns(&ctx, 100);
        let t1000 = estimate_ns(&ctx, 1000);
        assert!(t100 > 0.0);
        assert!(t1000 > t100);
    }
}
