//! Sort-and-reduce histogram strategy (paper §3.3.4).
//!
//! Builds a `(feature × bins + bin)` key per (instance, feature) pair,
//! radix-sorts keys with the d-dimensional gradient pair as payload,
//! then `reduce_by_key`s runs of equal keys into the histogram. No
//! atomics at all — write contention is structurally impossible — but
//! the whole payload moves through every radix pass, so cost grows
//! steeply with the output dimension and the method "consistently incurs
//! the highest cost" (Fig. 6a) except under extreme contention.

use super::HistContext;
use gpusim::cost::KernelCost;
use gpusim::primitives::{reduce_by_key_sorted, sort_by_key_u32};
use gpusim::{Device, Phase};

/// Radix passes over 32-bit keys.
const RADIX_PASSES: f64 = 4.0;

/// Build the kernel-cost descriptor.
pub fn cost_descriptor(ctx: &HistContext<'_>, nn: usize) -> KernelCost {
    let mf = ctx.features.len();
    let d = ctx.d();
    let keys = nn as f64 * mf as f64 * super::density_factor(ctx);
    // Payload carried through each radix pass: key (4 B) + d (g,h)
    // pairs (8d B for f32, 4d B quantized), read + written per pass.
    let payload_bytes = 4.0 + super::stats::pair_bytes(ctx) * d as f64;
    let sort_traffic = RADIX_PASSES * 2.0 * keys * payload_bytes;
    // Reduce: per output, the (g, h) pair is gathered through the sort
    // permutation — a random-access pattern served at L2-sector
    // granularity — then streamed into reduce_by_key and the histogram.
    let sector = ctx.device.model().params.sector_bytes as f64;
    let reduce_traffic =
        keys * d as f64 * sector + keys * payload_bytes + (mf * ctx.bins * d * 2) as f64 * 8.0;

    KernelCost {
        flops: keys * (8.0 + 2.0 * d as f64),
        dram_bytes: sort_traffic + reduce_traffic,
        sort_keys: keys,
        // Key build + 4 radix passes (histogram + scatter each) + one
        // reduce_by_key pass per output dimension.
        launches: 1.0 + RADIX_PASSES * 2.0 + d as f64,
        ..Default::default()
    }
}

/// Charge one node's sort-and-reduce histogram build.
pub fn charge(ctx: &HistContext<'_>, idx: &[u32]) {
    charge_on(ctx, idx, 0);
}

/// [`charge`] issued on a specific stream, so sibling-node builds can
/// overlap. The charged nanoseconds are identical regardless of stream;
/// only the start timestamp moves.
pub fn charge_on(ctx: &HistContext<'_>, idx: &[u32], stream: usize) {
    let _scope = ctx.device.prof_scope("hist_sortreduce", None);
    ctx.device.stream(stream).charge_kernel(
        "hist_sort_reduce",
        Phase::Histogram,
        &cost_descriptor(ctx, idx.len()),
    );
    if let Some(san) = ctx.device.sanitizer() {
        trace(ctx, idx, &san);
    }
}

/// Declare this kernel's access stream to an attached sanitizer. After
/// the radix sort, `reduce_by_key` assigns each run of equal keys to
/// one thread, which writes each histogram slot exactly once with a
/// *plain* store — no atomics anywhere, and racecheck verifies the
/// slots really are disjoint.
pub fn trace(ctx: &HistContext<'_>, idx: &[u32], san: &gpusim::sanitize::Sanitizer) {
    use gpusim::{AccessKind, MemSpace, ThreadCtx};
    let mf = ctx.features.len();
    let d = ctx.d();
    let bins = ctx.bins;
    let nn = idx.len();
    let scope = san.scope("hist_sort_reduce");
    let k_id = scope.register("sorted_keys", nn * mf, MemSpace::Global, true);
    let g_id = scope.register("hist_g", mf * d * bins, MemSpace::Global, false);
    let h_id = scope.register("hist_h", mf * d * bins, MemSpace::Global, false);
    let c_id = scope.register("hist_counts", mf * bins, MemSpace::Global, false);

    // Distinct (feature, bin) slots among a deterministic sample of
    // pairs; each slot is owned by exactly one reducer thread.
    let f_stride = mf.div_ceil(crate::sanitize::MAX_TRACE_FEATURES).max(1);
    let mut slots: Vec<(usize, usize)> = Vec::new();
    for f_local in (0..mf).step_by(f_stride) {
        let f = ctx.features[f_local] as usize;
        let col = ctx.data.bins.col(f);
        for j in crate::sanitize::sample_stride(nn, crate::sanitize::MAX_TRACE_INSTANCES) {
            slots.push((f_local, col[idx[j] as usize] as usize));
        }
    }
    slots.sort_unstable();
    slots.dedup();
    for (t, &(f_local, b)) in slots.iter().enumerate() {
        let tctx = ThreadCtx::from_global(t, 256);
        // The reducer reads the head key of its run…
        scope.touch(
            k_id,
            tctx,
            (f_local * nn).min(nn * mf - 1),
            AccessKind::Read,
        );
        // …and writes each output's (g, h) slot plus the count once.
        for k in 0..d.min(crate::sanitize::MAX_TRACE_OUTPUTS) {
            let slot = (f_local * d + k) * bins + b;
            scope.touch(g_id, tctx, slot, AccessKind::Write);
            scope.touch(h_id, tctx, slot, AccessKind::Write);
        }
        scope.touch(c_id, tctx, f_local * bins + b, AccessKind::Write);
    }
}

/// Predicted cost (ns) for the adaptive selector.
pub fn estimate_ns(ctx: &HistContext<'_>, node_size: usize) -> f64 {
    ctx.device
        .model()
        .kernel_ns(&cost_descriptor(ctx, node_size))
}

/// Reference implementation that *actually* routes the data through the
/// simulator's `sort_by_key` / `reduce_by_key` primitives, one output at
/// a time. Used by tests to prove the production accumulation path and
/// the sort pipeline agree; too slow for hot training loops.
pub fn build_exact_via_sort(
    device: &Device,
    ctx: &HistContext<'_>,
    idx: &[u32],
    out: &mut super::NodeHistogram,
) {
    let d = ctx.d();
    let bins = ctx.bins;
    out.reset();

    // Keys over (f_local, bin) for every (instance, feature) pair.
    let mut keys = Vec::with_capacity(idx.len() * ctx.features.len());
    let mut inst = Vec::with_capacity(keys.capacity());
    for (f_local, &f) in ctx.features.iter().enumerate() {
        let col = ctx.data.bins.col(f as usize);
        for &i in idx {
            keys.push((f_local * bins + col[i as usize] as usize) as u32);
            inst.push(i);
        }
    }
    let (sorted_keys, perm) = sort_by_key_u32(device, Phase::Histogram, "sr_sort", &keys);

    for k in 0..d {
        let gvals: Vec<f64> = perm
            .iter()
            .map(|&p| ctx.grads.g[inst[p as usize] as usize * d + k] as f64)
            .collect();
        let hvals: Vec<f64> = perm
            .iter()
            .map(|&p| ctx.grads.h[inst[p as usize] as usize * d + k] as f64)
            .collect();
        let (uk, gsums) = reduce_by_key_sorted(
            device,
            Phase::Histogram,
            "sr_reduce_g",
            &sorted_keys,
            &gvals,
        );
        let (_, hsums) = reduce_by_key_sorted(
            device,
            Phase::Histogram,
            "sr_reduce_h",
            &sorted_keys,
            &hvals,
        );
        for ((key, gs), hs) in uk.iter().zip(gsums).zip(hsums) {
            let f_local = *key as usize / bins;
            let b = *key as usize % bins;
            let at = out.gh_index(f_local, k, b);
            out.g[at] = gs;
            out.h[at] = hs;
        }
    }
    // Counts from the key runs.
    let mut i = 0;
    while i < sorted_keys.len() {
        let mut j = i;
        while j < sorted_keys.len() && sorted_keys[j] == sorted_keys[i] {
            j += 1;
        }
        let key = sorted_keys[i] as usize;
        let at = out.cnt_index(key / bins, key % bins);
        out.counts[at] = (j - i) as u32;
        i = j;
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::fixture;
    use super::super::{accumulate_dense, HistContext, NodeHistogram};
    use super::*;
    use crate::config::HistOptions;
    use gpusim::Device;

    fn make_ctx<'a>(
        device: &'a gpusim::Device,
        data: &'a gbdt_data::BinnedDataset,
        grads: &'a crate::grad::Gradients,
        features: &'a [u32],
    ) -> HistContext<'a> {
        HistContext {
            device,
            data,
            grads,
            features,
            bins: 32,
            opts: HistOptions::default(),
        }
    }

    #[test]
    fn exact_sort_path_matches_accumulation() {
        let (_, data, grads) = fixture(150, 5, 3, 1);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..5).collect();
        let ctx = make_ctx(&device, &data, &grads, &features);
        let idx: Vec<u32> = (0..150).filter(|i| i % 4 != 3).collect();

        let mut via_sort = NodeHistogram::new(5, grads.d, 32);
        build_exact_via_sort(&device, &ctx, &idx, &mut via_sort);
        let mut via_accum = NodeHistogram::new(5, grads.d, 32);
        accumulate_dense(&ctx, &idx, &mut via_accum);

        assert_eq!(via_sort.counts, via_accum.counts);
        for (a, b) in via_sort.g.iter().zip(&via_accum.g) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        for (a, b) in via_sort.h.iter().zip(&via_accum.h) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn cost_grows_steeply_with_outputs() {
        let (_, data2, grads2) = fixture(20_000, 6, 2, 2);
        let (_, data16, grads16) = fixture(20_000, 6, 16, 2);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..6).collect();
        let t2 = estimate_ns(&make_ctx(&device, &data2, &grads2, &features), 20_000);
        let t16 = estimate_ns(&make_ctx(&device, &data16, &grads16, &features), 20_000);
        assert!(t16 > t2 * 2.0, "d=16 {t16} vs d=2 {t2}");
    }

    #[test]
    fn sort_reduce_is_slowest_on_typical_nodes() {
        // Fig. 6a's headline ordering on a representative mid-size,
        // multi-output node.
        let (_, data, grads) = fixture(2000, 8, 12, 3);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..8).collect();
        let ctx = make_ctx(&device, &data, &grads, &features);
        let sr = estimate_ns(&ctx, 2000);
        let g = super::super::gmem::estimate_ns(&ctx, 2000);
        let s = super::super::smem::estimate_ns(&ctx, 2000);
        assert!(sr > g, "sort-reduce {sr} vs gmem {g}");
        assert!(sr > s, "sort-reduce {sr} vs smem {s}");
    }

    #[test]
    fn charge_books_histogram_time() {
        let (_, data, grads) = fixture(200, 4, 2, 4);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..4).collect();
        let ctx = make_ctx(&device, &data, &grads, &features);
        charge(&ctx, &(0..200).collect::<Vec<u32>>());
        assert!(device.summary().by_phase.contains_key(&Phase::Histogram));
    }
}
