//! Access-pattern statistics shared by the histogram cost models.
//!
//! `measure` derives contention from the *actual* bins and instance
//! indices (sampled warps × sampled features, deterministically);
//! `expect` produces the closed-form estimate the adaptive selector uses
//! before any kernel runs — predicting cost must not cost a kernel.

use super::HistContext;
use gpusim::warp::{atomic_replay_excess, sectors_touched, WarpSampler};

/// Feature-sampling cap for measured statistics.
const MAX_SAMPLED_FEATURES: usize = 8;
/// Warp-sampling cap per sampled feature.
const MAX_SAMPLED_WARPS: usize = 64;

/// Contention/traffic statistics of one node-histogram launch,
/// already scaled to the full (instances × features) workload.
#[derive(Debug, Clone, Copy)]
pub struct ContentionStats {
    /// Total excess (replayed) bin-address collisions across all
    /// (warp, feature) atomic groups, **per output-pass** — multiply by
    /// `2d` for the (g, h) update stream.
    pub replay_excess: f64,
    /// Global-memory transactions needed to fetch bin IDs, unpacked
    /// (1-byte lanes).
    pub bin_transactions_unpacked: f64,
    /// Same, with 4-per-word bin packing (§3.4.1).
    pub bin_transactions_packed: f64,
    /// Mean fraction of *distinct* bins within each packed group of 4
    /// consecutive instances (∈ [0.25, 1]). With bin packing, a thread
    /// owns 4 instances and pre-aggregates same-bin contributions in
    /// registers before issuing atomics, so both the atomic count and
    /// the replay count scale by this ratio — the data-dependent part
    /// of the paper's "+wo" speedup (§3.4.1).
    pub packed_aggregation_ratio: f64,
}

impl Default for ContentionStats {
    fn default() -> Self {
        ContentionStats {
            replay_excess: 0.0,
            bin_transactions_unpacked: 0.0,
            bin_transactions_packed: 0.0,
            packed_aggregation_ratio: 1.0,
        }
    }
}

/// Measure statistics from the real instance list and bin columns.
pub fn measure(ctx: &HistContext<'_>, idx: &[u32]) -> ContentionStats {
    let nn = idx.len();
    let mf = ctx.features.len();
    if nn == 0 || mf == 0 {
        return ContentionStats::default();
    }
    let p = &ctx.device.model().params;
    let warp = p.warp_size as usize;
    let total_warps = nn.div_ceil(warp);
    let sampler = WarpSampler::with_cap(total_warps, MAX_SAMPLED_WARPS);

    // --- transactions: depend only on the index pattern, not the feature.
    let mut trans_unpacked = 0usize;
    let mut trans_packed = 0usize;
    let mut addrs: Vec<u64> = Vec::with_capacity(warp);
    for w in sampler.indices() {
        let s = w * warp;
        let e = (s + warp).min(nn);
        addrs.clear();
        addrs.extend(idx[s..e].iter().map(|&i| i as u64));
        trans_unpacked += sectors_touched(&addrs, 1, p.sector_bytes);
        let packed_addrs: Vec<u64> = addrs.iter().map(|a| (a / 4) * 4).collect();
        trans_packed += sectors_touched(&packed_addrs, 4, p.sector_bytes);
    }
    let warp_scale = sampler.scale();

    // --- replay excess: sample features and reuse the warp sample.
    let f_stride = mf.div_ceil(MAX_SAMPLED_FEATURES).max(1);
    let mut excess = 0u64;
    let mut group_distinct = 0u64;
    let mut group_lanes = 0u64;
    let mut sampled_features = 0usize;
    let mut bin_addrs: Vec<u64> = Vec::with_capacity(warp);
    let mut fi = 0;
    while fi < mf {
        sampled_features += 1;
        let col = ctx.data.bins.col(ctx.features[fi] as usize);
        for w in sampler.indices() {
            let s = w * warp;
            let e = (s + warp).min(nn);
            bin_addrs.clear();
            bin_addrs.extend(idx[s..e].iter().map(|&i| col[i as usize] as u64));
            excess += atomic_replay_excess(&bin_addrs);
            // Register-level pre-aggregation potential of packed groups
            // of 4 consecutive instances.
            for group in bin_addrs.chunks(4) {
                let mut g = group.to_vec();
                g.sort_unstable();
                g.dedup();
                group_distinct += g.len() as u64;
                group_lanes += group.len() as u64;
            }
        }
        fi += f_stride;
    }
    let feature_scale = mf as f64 / sampled_features as f64;

    ContentionStats {
        replay_excess: excess as f64 * warp_scale * feature_scale,
        bin_transactions_unpacked: trans_unpacked as f64 * warp_scale * mf as f64,
        bin_transactions_packed: trans_packed as f64 * warp_scale * mf as f64,
        packed_aggregation_ratio: if group_lanes == 0 {
            1.0
        } else {
            group_distinct as f64 / group_lanes as f64
        },
    }
}

/// Closed-form expectation of the same statistics, used by the adaptive
/// selector. Assumes: bins roughly uniform except a skew mass equal to
/// the dataset's zero fraction landing in one bin; instance indices
/// partially scattered (half-coalesced) after the first splits.
pub fn expect(ctx: &HistContext<'_>, node_size: usize) -> ContentionStats {
    let nn = node_size as f64;
    let mf = ctx.features.len() as f64;
    if nn == 0.0 || mf == 0.0 {
        return ContentionStats::default();
    }
    let p = &ctx.device.model().params;
    let w = p.warp_size as f64;
    let bins = ctx.bins as f64;
    let warps = (nn / w).ceil();

    // Expected distinct bins among w uniform draws over `bins`.
    let uniform_distinct = bins * (1.0 - (1.0 - 1.0 / bins).powf(w));
    let uniform_excess = (w - uniform_distinct).max(0.0);
    // Skew: a zero-heavy feature funnels `sparsity` of each warp into
    // one bin.
    let total = (ctx.data.n() * ctx.data.m()) as f64;
    let sparsity = 1.0 - ctx.data.sparse.nnz() as f64 / total.max(1.0);
    let skew_excess = (w * sparsity - 1.0).max(0.0);
    let excess_per_warp = uniform_excess.max(skew_excess).min(w - 1.0);

    // Transactions: a warp reading w consecutive-ish indices spans about
    // half-scattered sectors mid-training.
    let sector = p.sector_bytes as f64;
    let trans_unpacked_per_warp = (w / sector).max(1.0) * 8.0; // ~8 sectors when scattered
    let trans_packed_per_warp = trans_unpacked_per_warp / 2.0;

    // Expected distinct bins in a packed group of 4: uniform draws vs
    // the zero-bin skew collapsing duplicates.
    let uniform_distinct4 = bins * (1.0 - (1.0 - 1.0 / bins).powi(4));
    let skew_distinct4 = 4.0 - (4.0 * sparsity - 1.0).max(0.0);
    let distinct4 = uniform_distinct4.min(skew_distinct4).clamp(1.0, 4.0);

    ContentionStats {
        replay_excess: excess_per_warp * warps * mf,
        bin_transactions_unpacked: trans_unpacked_per_warp * warps * mf,
        bin_transactions_packed: trans_packed_per_warp * warps * mf,
        packed_aggregation_ratio: distinct4 / 4.0,
    }
}

/// Effective DRAM bytes for the gradient/Hessian rows a histogram pass
/// reads: each of the node's `nn` rows (`d` (g, h) pairs of
/// `pair_bytes` — 8 for f32, 4 for bf16-quantized) is touched once per
/// feature, with L2 capturing most cross-feature reuse.
pub fn gh_bytes(nn: usize, mf: usize, d: usize, pair_bytes: f64) -> f64 {
    let base = nn as f64 * d as f64 * pair_bytes;
    base * (1.0 + (mf.saturating_sub(1)) as f64 * (1.0 - super::GH_L2_HIT))
}

/// Bytes of one (g, h) pair under the context's gradient precision.
pub fn pair_bytes(ctx: &HistContext<'_>) -> f64 {
    if ctx.opts.quantized_gradients {
        4.0
    } else {
        8.0
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::fixture;
    use super::super::HistContext;
    use super::*;
    use crate::config::HistOptions;
    use gpusim::Device;

    #[test]
    fn measured_stats_scale_with_node_size() {
        let (_, data, grads) = fixture(2000, 8, 3, 1);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..8).collect();
        let ctx = HistContext {
            device: &device,
            data: &data,
            grads: &grads,
            features: &features,
            bins: 32,
            opts: HistOptions::default(),
        };
        let small: Vec<u32> = (0..200).collect();
        let large: Vec<u32> = (0..2000).collect();
        let s = measure(&ctx, &small);
        let l = measure(&ctx, &large);
        assert!(l.replay_excess > s.replay_excess);
        assert!(l.bin_transactions_unpacked > s.bin_transactions_unpacked);
    }

    #[test]
    fn packing_reduces_transactions() {
        let (_, data, grads) = fixture(1000, 4, 2, 2);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..4).collect();
        let ctx = HistContext {
            device: &device,
            data: &data,
            grads: &grads,
            features: &features,
            bins: 32,
            opts: HistOptions::default(),
        };
        // Scattered index list (post-partition pattern).
        let idx: Vec<u32> = (0..1000).filter(|i| i % 3 == 0).collect();
        let s = measure(&ctx, &idx);
        assert!(
            s.bin_transactions_packed <= s.bin_transactions_unpacked,
            "packed {} vs unpacked {}",
            s.bin_transactions_packed,
            s.bin_transactions_unpacked
        );
    }

    #[test]
    fn expected_stats_are_finite_and_monotone() {
        let (_, data, grads) = fixture(500, 6, 2, 3);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..6).collect();
        let ctx = HistContext {
            device: &device,
            data: &data,
            grads: &grads,
            features: &features,
            bins: 32,
            opts: HistOptions::default(),
        };
        let a = expect(&ctx, 100);
        let b = expect(&ctx, 1000);
        assert!(b.replay_excess > a.replay_excess);
        assert!(a.replay_excess.is_finite() && a.replay_excess >= 0.0);
        let zero = expect(&ctx, 0);
        assert_eq!(zero.replay_excess, 0.0);
    }

    #[test]
    fn gh_bytes_grow_with_features_but_sublinearly() {
        let one = gh_bytes(1000, 1, 10, 8.0);
        let many = gh_bytes(1000, 100, 10, 8.0);
        assert!(many > one);
        assert!(many < one * 100.0, "L2 reuse must dampen the growth");
        // Quantized pairs halve the traffic.
        assert!((gh_bytes(1000, 100, 10, 4.0) - many / 2.0).abs() < 1e-6);
    }

    #[test]
    fn contention_stats_are_per_output_pass_invariant_under_sketching() {
        // Replay/traffic statistics describe the bin-access pattern only
        // (per output-pass, see `ContentionStats::replay_excess`), so a
        // k-column gradient sketch must leave them bit-identical — the
        // whole sketch saving enters through the `2d → 2k` multiplier in
        // the per-method cost formulas, not through contention.
        use crate::config::OutputSketch;
        use crate::sketch::{apply_sketch, plan_sketch};
        let (_, data, grads) = fixture(1500, 6, 12, 9);
        let device = Device::rtx4090();
        let plan = plan_sketch(&device, &grads, OutputSketch::RandomSampling(3), 13);
        let sketched = apply_sketch(&device, &grads, &plan);
        assert_eq!(sketched.d, 3);
        let features: Vec<u32> = (0..6).collect();
        let full = HistContext {
            device: &device,
            data: &data,
            grads: &grads,
            features: &features,
            bins: 32,
            opts: HistOptions::default(),
        };
        let thin = HistContext {
            device: &device,
            data: &data,
            grads: &sketched,
            features: &features,
            bins: 32,
            opts: HistOptions::default(),
        };
        let idx: Vec<u32> = (0..1500).collect();
        let (mf, mt) = (measure(&full, &idx), measure(&thin, &idx));
        assert_eq!(mf.replay_excess.to_bits(), mt.replay_excess.to_bits());
        assert_eq!(
            mf.bin_transactions_unpacked.to_bits(),
            mt.bin_transactions_unpacked.to_bits()
        );
        assert_eq!(
            mf.bin_transactions_packed.to_bits(),
            mt.bin_transactions_packed.to_bits()
        );
        assert_eq!(
            mf.packed_aggregation_ratio.to_bits(),
            mt.packed_aggregation_ratio.to_bits()
        );
        let (ef, et) = (expect(&full, 1500), expect(&thin, 1500));
        assert_eq!(ef.replay_excess.to_bits(), et.replay_excess.to_bits());
    }
}
