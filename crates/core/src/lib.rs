//! # gbdt-core — GPU-accelerated multi-output GBDT training
//!
//! Rust reproduction of the training system from *"Accelerating
//! Multi-Output GBDTs with GPUs"* (ICPP'25) over the [`gpusim`]
//! simulated device. The pipeline follows the paper's Fig. 2:
//!
//! 1. **Gradients** ([`grad`]) — per-instance, per-output `g`/`h` from a
//!    pluggable loss ([`loss`]);
//! 2. **Histograms** ([`hist`]) — the dominant cost; three strategies
//!    (global-memory atomics, shared-memory tiling, sort-and-reduce),
//!    warp-level bin packing, and adaptive per-node selection;
//! 3. **Split selection** ([`split`]) — segmented prefix sums + Eq. (3)
//!    gains + segmented/global reductions;
//! 4. **Partition & growth** ([`grow`], [`tree`]) — level-wise
//!    Algorithm 1 with optional histogram subtraction;
//! 5. **Prediction** ([`predict`]) — instance- and tree-level parallel
//!    inference, plus the incremental training-score update.
//!
//! [`trainer::GpuTrainer`] drives a single device;
//! [`multigpu::MultiGpuTrainer`] partitions features across a
//! [`gpusim::DeviceGroup`] (paper §3.4.2).
//!
//! For inference beyond training, [`compiled::CompiledEnsemble`]
//! flattens trees into SoA arrays and [`serve`] uploads them to a
//! device behind a micro-batching [`serve::BatchServer`].

#![warn(missing_docs)]

pub mod checkpoint;
pub mod compiled;
pub mod config;
pub mod cv;
pub mod error;
pub mod grad;
pub mod grow;
pub mod hist;
pub mod importance;
pub mod loss;
pub mod memory;
pub mod metrics;
pub mod model;
pub mod multigpu;
pub mod predict;
pub mod sanitize;
pub mod serialize;
pub mod serve;
pub mod sketch;
pub mod split;
pub mod trainer;
pub mod tree;

pub use checkpoint::Checkpoint;
pub use compiled::CompiledEnsemble;
pub use config::{ConfigError, HistOptions, HistogramMethod, OutputSketch, TrainConfig};
pub use error::{RetryPolicy, ServeError, TrainError};
pub use grad::Gradients;
pub use metrics::{accuracy, logloss, rmse, top_k_accuracy};
pub use model::Model;
pub use multigpu::{MultiGpuStrategy, MultiGpuTrainer};
pub use predict::PredictMode;
pub use serve::{BatchConfig, BatchServer, DeviceEnsemble, ServeStats, ServedBatch};
pub use trainer::{GpuTrainer, TrainReport, ValidationReport};
pub use tree::{Node, Tree};
