//! Evaluation metrics matching the paper's Tables 3–4 ("accuracy or
//! RMSE depending on task types").

/// Classification accuracy of raw (or transformed) scores against class
/// labels: fraction of rows whose argmax equals the label.
pub fn accuracy(scores: &[f32], labels: &[u32]) -> f64 {
    assert!(!labels.is_empty(), "empty label set");
    assert_eq!(scores.len() % labels.len(), 0, "scores not divisible by n");
    let d = scores.len() / labels.len();
    let correct = scores
        .chunks(d)
        .zip(labels)
        .filter(|(row, &label)| {
            let mut best = (0usize, f32::NEG_INFINITY);
            for (k, &v) in row.iter().enumerate() {
                if v > best.1 {
                    best = (k, v);
                }
            }
            best.0 as u32 == label
        })
        .count();
    correct as f64 / labels.len() as f64
}

/// Root mean squared error over all `n × d` entries.
pub fn rmse(predictions: &[f32], targets: &[f32]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    assert!(!predictions.is_empty(), "empty prediction set");
    let mse: f64 = predictions
        .iter()
        .zip(targets)
        .map(|(&p, &t)| {
            let e = (p - t) as f64;
            e * e
        })
        .sum::<f64>()
        / predictions.len() as f64;
    mse.sqrt()
}

/// Top-`k` accuracy: the true label appears among the `k` highest
/// scores.
pub fn top_k_accuracy(scores: &[f32], labels: &[u32], k: usize) -> f64 {
    assert!(!labels.is_empty(), "empty label set");
    assert_eq!(scores.len() % labels.len(), 0);
    let d = scores.len() / labels.len();
    let k = k.min(d);
    let hits = scores
        .chunks(d)
        .zip(labels)
        .filter(|(row, &label)| {
            let target_score = row[label as usize];
            let higher = row.iter().filter(|&&v| v > target_score).count();
            higher < k
        })
        .count();
    hits as f64 / labels.len() as f64
}

/// Mean cross-entropy (log-loss) of probability rows against class
/// labels; probabilities are clamped away from 0.
pub fn logloss(probs: &[f32], labels: &[u32]) -> f64 {
    assert!(!labels.is_empty(), "empty label set");
    assert_eq!(probs.len() % labels.len(), 0);
    let d = probs.len() / labels.len();
    let total: f64 = probs
        .chunks(d)
        .zip(labels)
        .map(|(row, &label)| -(row[label as usize].max(1e-12) as f64).ln())
        .sum();
    total / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_argmax_hits() {
        let scores = [0.9f32, 0.1, /**/ 0.2, 0.8, /**/ 0.6, 0.4];
        assert!((accuracy(&scores, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy(&scores, &[0, 1, 0]), 1.0);
    }

    #[test]
    fn rmse_basic() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse(&[3.0, 1.0], &[0.0, 1.0]) - (9.0f64 / 2.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn top_k_monotone_in_k() {
        let scores = [0.5f32, 0.3, 0.2, /**/ 0.1, 0.6, 0.3];
        let labels = [2u32, 2];
        let t1 = top_k_accuracy(&scores, &labels, 1);
        let t2 = top_k_accuracy(&scores, &labels, 2);
        let t3 = top_k_accuracy(&scores, &labels, 3);
        assert!(t1 <= t2 && t2 <= t3);
        assert_eq!(t3, 1.0);
        assert_eq!(t1, 0.0);
    }

    #[test]
    fn logloss_rewards_confidence() {
        let confident = [0.99f32, 0.01];
        let unsure = [0.5f32, 0.5];
        assert!(logloss(&confident, &[0]) < logloss(&unsure, &[0]));
        assert!(
            logloss(&[0.0, 1.0], &[0]).is_finite(),
            "clamped away from ln(0)"
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rmse_checks_lengths() {
        let _ = rmse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn accuracy_rejects_empty() {
        let _ = accuracy(&[], &[]);
    }
}
