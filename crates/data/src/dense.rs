//! Row-major dense feature matrix (paper §3.2, "dense representation").

use serde::{Deserialize, Serialize};

/// A dense `rows × cols` matrix of `f32` feature values, row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    values: Vec<f32>,
}

impl DenseMatrix {
    /// Build from a flat row-major vector.
    pub fn new(rows: usize, cols: usize, values: Vec<f32>) -> Self {
        assert_eq!(
            values.len(),
            rows * cols,
            "value length {} does not match {rows}×{cols}",
            values.len()
        );
        DenseMatrix { rows, cols, values }
    }

    /// Build from row slices (all must have equal length).
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(
            rows.iter().all(|row| row.len() == c),
            "ragged rows in DenseMatrix::from_rows"
        );
        let mut values = Vec::with_capacity(r * c);
        for row in rows {
            values.extend_from_slice(row);
        }
        DenseMatrix {
            rows: r,
            cols: c,
            values,
        }
    }

    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            values: vec![0.0; rows * cols],
        }
    }

    /// Number of rows (instances).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        debug_assert!(row < self.rows && col < self.cols);
        self.values[row * self.cols + col]
    }

    /// Set element at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, v: f32) {
        debug_assert!(row < self.rows && col < self.cols);
        self.values[row * self.cols + col] = v;
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.values[i * self.cols..(i + 1) * self.cols]
    }

    /// Materialize column `j` (strided copy).
    pub fn col(&self, j: usize) -> Vec<f32> {
        assert!(j < self.cols, "column {j} out of range ({})", self.cols);
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// The flat row-major backing storage.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// New matrix from the given row indices (duplicates allowed).
    pub fn select_rows(&self, idx: &[usize]) -> DenseMatrix {
        let mut values = Vec::with_capacity(idx.len() * self.cols);
        for &i in idx {
            values.extend_from_slice(self.row(i));
        }
        DenseMatrix {
            rows: idx.len(),
            cols: self.cols,
            values,
        }
    }

    /// New matrix keeping only the given columns, in the given order.
    pub fn select_cols(&self, cols: &[usize]) -> DenseMatrix {
        let mut values = Vec::with_capacity(self.rows * cols.len());
        for i in 0..self.rows {
            for &j in cols {
                values.push(self.get(i, j));
            }
        }
        DenseMatrix {
            rows: self.rows,
            cols: cols.len(),
            values,
        }
    }

    /// Fraction of exactly-zero entries.
    pub fn sparsity(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let zeros = self.values.iter().filter(|&&v| v == 0.0).count();
        zeros as f64 / self.values.len() as f64
    }

    /// Count of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.values.iter().filter(|&&v| v != 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> DenseMatrix {
        // The paper's §3.2 running example.
        DenseMatrix::from_rows(&[
            vec![0.0, 0.0, 3.0, 0.0, 0.0],
            vec![2.0, 0.0, 0.0, 0.0, 7.0],
            vec![0.0, 6.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0, 0.0, 8.0],
        ])
    }

    #[test]
    fn shape_and_access() {
        let m = m();
        assert_eq!((m.rows(), m.cols()), (5, 5));
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(4, 4), 8.0);
        assert_eq!(m.row(1), &[2.0, 0.0, 0.0, 0.0, 7.0]);
        assert_eq!(m.col(4), vec![0.0, 7.0, 0.0, 0.0, 8.0]);
    }

    #[test]
    fn set_updates() {
        let mut m = m();
        m.set(3, 3, 9.0);
        assert_eq!(m.get(3, 3), 9.0);
    }

    #[test]
    fn nnz_and_sparsity() {
        let m = m();
        assert_eq!(m.nnz(), 6);
        assert!((m.sparsity() - 19.0 / 25.0).abs() < 1e-9);
    }

    #[test]
    fn select_rows_and_cols() {
        let m = m();
        let r = m.select_rows(&[4, 1]);
        assert_eq!(r.rows(), 2);
        assert_eq!(r.get(0, 0), 1.0);
        assert_eq!(r.get(1, 4), 7.0);
        let c = m.select_cols(&[4, 0]);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.get(1, 0), 7.0);
        assert_eq!(c.get(1, 1), 2.0);
    }

    #[test]
    fn zeros_matrix() {
        let z = DenseMatrix::zeros(2, 3);
        assert_eq!(z.values(), &[0.0; 6]);
        assert_eq!(z.sparsity(), 1.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn shape_mismatch_panics() {
        let _ = DenseMatrix::new(2, 2, vec![1.0; 3]);
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn ragged_rows_panic() {
        let _ = DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
