//! Binned feature storage: the `u8` bin matrix kernels consume, the
//! packed 4-bins-per-`u32` layout of the paper's warp-level optimization
//! (§3.4.1), and a CSC-style sparse binned form.

use crate::binning::BinCuts;
use crate::csc::CscMatrix;
use crate::dense::DenseMatrix;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Column-major matrix of bin IDs: `bin(i, f) = bins[f * n + i]`.
///
/// Column-major order is what the paper's "column-wise data
/// distribution" (§3.2) requires: a thread block owns one or more
/// feature columns and its warps stream that column's instances
/// contiguously.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinnedMatrix {
    n: usize,
    m: usize,
    bins: Vec<u8>,
}

impl BinnedMatrix {
    /// Bin every entry of `features` under `cuts`.
    pub fn from_matrix(features: &DenseMatrix, cuts: &BinCuts) -> Self {
        let (n, m) = (features.rows(), features.cols());
        assert_eq!(cuts.num_features(), m, "cuts/features column mismatch");
        let mut bins = vec![0u8; n * m];
        bins.par_chunks_mut(n).enumerate().for_each(|(f, col)| {
            for (i, slot) in col.iter_mut().enumerate() {
                *slot = cuts.bin_value(f, features.get(i, f));
            }
        });
        BinnedMatrix { n, m, bins }
    }

    /// Number of instances.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of features.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Bin of instance `i` under feature `f`.
    #[inline]
    pub fn get(&self, i: usize, f: usize) -> u8 {
        debug_assert!(i < self.n && f < self.m);
        self.bins[f * self.n + i]
    }

    /// Contiguous column of feature `f`'s bins.
    pub fn col(&self, f: usize) -> &[u8] {
        &self.bins[f * self.n..(f + 1) * self.n]
    }

    /// Raw column-major storage.
    pub fn raw(&self) -> &[u8] {
        &self.bins
    }

    /// Resident bytes.
    pub fn memory_bytes(&self) -> usize {
        self.bins.len()
    }
}

/// Bin IDs packed four-per-`u32`, column-major (paper §3.4.1).
///
/// Byte `i % 4` of word `i / 4` in a column holds instance `i`'s bin
/// (little-endian), so a warp reading 32 consecutive instances' bins
/// needs 8 coalesced word loads instead of 32 byte loads — the memory-
/// transaction saving the paper exploits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackedBins {
    n: usize,
    m: usize,
    words_per_col: usize,
    words: Vec<u32>,
}

impl PackedBins {
    /// Pack an unpacked bin matrix.
    pub fn from_binned(b: &BinnedMatrix) -> Self {
        let n = b.n();
        let m = b.m();
        let words_per_col = n.div_ceil(4);
        let mut words = vec![0u32; words_per_col * m];
        words
            .par_chunks_mut(words_per_col)
            .enumerate()
            .for_each(|(f, col_words)| {
                let col = b.col(f);
                for (w, slot) in col_words.iter_mut().enumerate() {
                    let base = w * 4;
                    let mut word = 0u32;
                    for lane in 0..4 {
                        if base + lane < n {
                            word |= (col[base + lane] as u32) << (8 * lane);
                        }
                    }
                    *slot = word;
                }
            });
        PackedBins {
            n,
            m,
            words_per_col,
            words,
        }
    }

    /// Number of instances.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of features.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Unpack one bin: shift-and-mask, as a kernel lane would.
    #[inline]
    pub fn get(&self, i: usize, f: usize) -> u8 {
        debug_assert!(i < self.n && f < self.m);
        let word = self.words[f * self.words_per_col + i / 4];
        ((word >> (8 * (i % 4))) & 0xFF) as u8
    }

    /// The packed words of feature `f`'s column.
    pub fn col_words(&self, f: usize) -> &[u32] {
        &self.words[f * self.words_per_col..(f + 1) * self.words_per_col]
    }

    /// Resident bytes (≈ same as unpacked, but transacted 4× wider).
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 4
    }
}

/// Sparse binned columns: only CSC-present entries carry explicit bins;
/// all absent entries of feature `f` implicitly live in `zero_bin[f]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseBinned {
    n: usize,
    m: usize,
    /// Row indices of explicit entries, per column (CSC order).
    row_indices: Vec<u32>,
    /// Bin of each explicit entry.
    bins: Vec<u8>,
    /// Column pointers (length `m + 1`).
    col_pointers: Vec<usize>,
    /// Implicit bin of absent entries, per feature.
    zero_bins: Vec<u8>,
}

impl SparseBinned {
    /// Bin the explicit entries of a CSC matrix.
    pub fn from_csc(csc: &CscMatrix, cuts: &BinCuts) -> Self {
        assert_eq!(cuts.num_features(), csc.cols(), "cuts/csc column mismatch");
        let bins: Vec<u8> = (0..csc.cols())
            .flat_map(|f| {
                let (_, vals) = csc.col(f);
                vals.iter().map(move |&v| cuts.bin_value(f, v))
            })
            .collect();
        let zero_bins = (0..csc.cols()).map(|f| cuts.zero_bin(f)).collect();
        SparseBinned {
            n: csc.rows(),
            m: csc.cols(),
            row_indices: csc.row_indices().to_vec(),
            bins,
            col_pointers: csc.col_pointers().to_vec(),
            zero_bins,
        }
    }

    /// Number of instances.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of features.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Explicit entries of feature `f`: `(row_indices, bins)`.
    pub fn col(&self, f: usize) -> (&[u32], &[u8]) {
        let (s, e) = (self.col_pointers[f], self.col_pointers[f + 1]);
        (&self.row_indices[s..e], &self.bins[s..e])
    }

    /// Implicit bin of feature `f`'s absent entries.
    pub fn zero_bin(&self, f: usize) -> u8 {
        self.zero_bins[f]
    }

    /// Total explicit entries.
    pub fn nnz(&self) -> usize {
        self.bins.len()
    }

    /// Bin of instance `i` under feature `f` (explicit or implicit).
    pub fn get(&self, i: usize, f: usize) -> u8 {
        let (rows, bins) = self.col(f);
        match rows.binary_search(&(i as u32)) {
            Ok(p) => bins[p],
            Err(_) => self.zero_bins[f],
        }
    }

    /// Resident bytes.
    pub fn memory_bytes(&self) -> usize {
        self.row_indices.len() * 4
            + self.bins.len()
            + self.col_pointers.len() * 8
            + self.zero_bins.len()
    }
}

/// A fully preprocessed training input: cuts plus binned storage in all
/// three layouts the kernels can consume.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BinnedDataset {
    /// Per-feature cut points.
    pub cuts: BinCuts,
    /// Unpacked column-major bins.
    pub bins: BinnedMatrix,
    /// Packed bins (warp-level optimization input).
    pub packed: PackedBins,
    /// Sparse binned form (for the sparsity-aware histogram path).
    pub sparse: SparseBinned,
}

impl BinnedDataset {
    /// Preprocess a dense feature matrix with `max_bins` quantile bins.
    pub fn build(features: &DenseMatrix, max_bins: usize) -> Self {
        let cuts = BinCuts::from_matrix(features, max_bins);
        let bins = BinnedMatrix::from_matrix(features, &cuts);
        let packed = PackedBins::from_binned(&bins);
        let sparse = SparseBinned::from_csc(&CscMatrix::from_dense(features), &cuts);
        BinnedDataset {
            cuts,
            bins,
            packed,
            sparse,
        }
    }

    /// Number of instances.
    pub fn n(&self) -> usize {
        self.bins.n()
    }

    /// Number of features.
    pub fn m(&self) -> usize {
        self.bins.m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![0.0, 5.0],
            vec![1.0, 0.0],
            vec![2.0, 5.0],
            vec![0.0, 9.0],
            vec![1.0, 0.0],
        ])
    }

    #[test]
    fn binned_matches_cuts() {
        let f = features();
        let cuts = BinCuts::from_matrix(&f, 16);
        let b = BinnedMatrix::from_matrix(&f, &cuts);
        for i in 0..f.rows() {
            for j in 0..f.cols() {
                assert_eq!(b.get(i, j), cuts.bin_value(j, f.get(i, j)));
            }
        }
        assert_eq!(b.col(0).len(), 5);
    }

    #[test]
    fn packed_roundtrips_every_entry() {
        let f = features();
        let cuts = BinCuts::from_matrix(&f, 16);
        let b = BinnedMatrix::from_matrix(&f, &cuts);
        let p = PackedBins::from_binned(&b);
        for i in 0..f.rows() {
            for j in 0..f.cols() {
                assert_eq!(p.get(i, j), b.get(i, j), "mismatch at ({i},{j})");
            }
        }
        // n=5 → 2 words per column.
        assert_eq!(p.col_words(0).len(), 2);
    }

    #[test]
    fn packed_word_layout_is_little_endian() {
        let f = DenseMatrix::new(4, 1, vec![0.0, 1.0, 2.0, 3.0]);
        let cuts = BinCuts::from_matrix(&f, 16);
        let b = BinnedMatrix::from_matrix(&f, &cuts);
        let p = PackedBins::from_binned(&b);
        // bins are 0,1,2,3 → word 0x03020100.
        assert_eq!(p.col_words(0)[0], 0x0302_0100);
    }

    #[test]
    fn sparse_binned_agrees_with_dense_binned() {
        let f = features();
        let cuts = BinCuts::from_matrix(&f, 16);
        let b = BinnedMatrix::from_matrix(&f, &cuts);
        let s = SparseBinned::from_csc(&CscMatrix::from_dense(&f), &cuts);
        for i in 0..f.rows() {
            for j in 0..f.cols() {
                assert_eq!(s.get(i, j), b.get(i, j), "mismatch at ({i},{j})");
            }
        }
        assert_eq!(s.nnz(), f.nnz());
    }

    #[test]
    fn sparse_binned_is_smaller_on_sparse_data() {
        // 95% zeros.
        let n = 400;
        let vals: Vec<f32> = (0..n)
            .map(|i| if i % 20 == 0 { 1.0 } else { 0.0 })
            .collect();
        let f = DenseMatrix::new(n, 1, vals);
        let ds = BinnedDataset::build(&f, 256);
        assert!(ds.sparse.memory_bytes() < ds.bins.memory_bytes());
    }

    #[test]
    fn binned_dataset_builds_consistent_views() {
        let f = features();
        let ds = BinnedDataset::build(&f, 64);
        assert_eq!(ds.n(), 5);
        assert_eq!(ds.m(), 2);
        for i in 0..5 {
            for j in 0..2 {
                let b = ds.bins.get(i, j);
                assert_eq!(ds.packed.get(i, j), b);
                assert_eq!(ds.sparse.get(i, j), b);
            }
        }
    }
}
