//! # gbdt-data — dataset substrate for multi-output GBDT training
//!
//! Storage and preprocessing layers from the paper:
//!
//! * [`dense`] — row-major dense feature matrices;
//! * [`csc`] — Compressed Sparse Column storage (paper §3.2), with the
//!   exact `values` / `row_indices` / `col_pointers` layout;
//! * [`binning`] — per-feature quantile cut points (≤ 256 bins);
//! * [`binned`] — the column-major `u8` bin matrix GBDT kernels consume,
//!   plus the 4-bins-per-`u32` packed layout of the paper's warp-level
//!   "bin packing" optimization (§3.4.1);
//! * [`synth`] — synthetic generators (`make_classification` etc., in
//!   the spirit of scikit-learn's APIs, which the paper uses for its
//!   class-count sweep, §4.3.3);
//! * [`datasets`] — shape-faithful replicas of the paper's nine
//!   evaluation datasets (Table 1);
//! * [`split`] — deterministic train/test splitting.

#![warn(missing_docs)]

pub mod binned;
pub mod binning;
pub mod bundling;
pub mod csc;
pub mod datasets;
pub mod dense;
pub mod io;
pub mod quantile_sketch;
pub mod split;
pub mod stats;
pub mod synth;

pub use binned::{BinnedDataset, BinnedMatrix, PackedBins};
pub use binning::BinCuts;
pub use csc::CscMatrix;
pub use datasets::{PaperDataset, PAPER_DATASETS};
pub use dense::DenseMatrix;
pub use synth::{
    make_classification, make_multilabel, make_regression, ClassificationSpec, MultilabelSpec,
    RegressionSpec,
};

use serde::{Deserialize, Serialize};

/// Learning task type, matching Table 1's `task` column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Task {
    /// Single label out of `d` classes (softmax + accuracy).
    MultiClass,
    /// `d` independent binary labels (sigmoid + RMSE over probabilities,
    /// as the paper reports for Delicious/NUS-WIDE).
    MultiLabel,
    /// `d` real-valued targets (MSE + RMSE).
    MultiRegression,
}

/// A supervised multi-output dataset: `n` instances, `m` features,
/// `d`-dimensional targets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    features: DenseMatrix,
    /// Row-major `n × d` target matrix. Multiclass targets are one-hot.
    targets: Vec<f32>,
    task: Task,
    d: usize,
}

impl Dataset {
    /// Assemble a dataset; panics if the target length is not `n × d`.
    pub fn new(features: DenseMatrix, targets: Vec<f32>, d: usize, task: Task) -> Self {
        assert!(d > 0, "output dimension must be positive");
        assert_eq!(
            targets.len(),
            features.rows() * d,
            "targets must be n × d (got {} for n={} d={})",
            targets.len(),
            features.rows(),
            d
        );
        Dataset {
            features,
            targets,
            task,
            d,
        }
    }

    /// Number of instances.
    pub fn n(&self) -> usize {
        self.features.rows()
    }

    /// Number of input features.
    pub fn m(&self) -> usize {
        self.features.cols()
    }

    /// Output dimensionality.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Task type.
    pub fn task(&self) -> Task {
        self.task
    }

    /// Input feature matrix.
    pub fn features(&self) -> &DenseMatrix {
        &self.features
    }

    /// Row-major `n × d` targets (one-hot for multiclass).
    pub fn targets(&self) -> &[f32] {
        &self.targets
    }

    /// Target row of instance `i`.
    pub fn target_row(&self, i: usize) -> &[f32] {
        &self.targets[i * self.d..(i + 1) * self.d]
    }

    /// Class labels (argmax of the target rows). Meaningful for
    /// [`Task::MultiClass`]; for other tasks returns the argmax anyway.
    pub fn labels(&self) -> Vec<u32> {
        (0..self.n())
            .map(|i| {
                let row = self.target_row(i);
                let mut best = (0usize, f32::NEG_INFINITY);
                for (k, &v) in row.iter().enumerate() {
                    if v > best.1 {
                        best = (k, v);
                    }
                }
                best.0 as u32
            })
            .collect()
    }

    /// Select a subset of instances by index (duplicates allowed).
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        let features = self.features.select_rows(idx);
        let mut targets = Vec::with_capacity(idx.len() * self.d);
        for &i in idx {
            targets.extend_from_slice(self.target_row(i));
        }
        Dataset {
            features,
            targets,
            task: self.task,
            d: self.d,
        }
    }

    /// Deterministic shuffled split into `(train, test)` with `frac` of
    /// instances in the test set.
    pub fn split(&self, frac: f64, seed: u64) -> (Dataset, Dataset) {
        let (train_idx, test_idx) = split::split_indices(self.n(), frac, seed);
        (self.subset(&train_idx), self.subset(&test_idx))
    }

    /// Fraction of exactly-zero feature entries (drives sparse-path
    /// decisions and the datasets module's shape fidelity checks).
    pub fn sparsity(&self) -> f64 {
        self.features.sparsity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let features = DenseMatrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 2.0],
            vec![3.0, 0.0],
            vec![0.0, 0.0],
        ]);
        let targets = vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0];
        Dataset::new(features, targets, 2, Task::MultiClass)
    }

    #[test]
    fn dims_and_access() {
        let ds = tiny();
        assert_eq!((ds.n(), ds.m(), ds.d()), (4, 2, 2));
        assert_eq!(ds.target_row(1), &[0.0, 1.0]);
        assert_eq!(ds.labels(), vec![0, 1, 0, 1]);
    }

    #[test]
    fn subset_selects_rows() {
        let ds = tiny();
        let sub = ds.subset(&[2, 0]);
        assert_eq!(sub.n(), 2);
        assert_eq!(sub.features().get(0, 0), 3.0);
        assert_eq!(sub.target_row(1), &[1.0, 0.0]);
    }

    #[test]
    fn split_partitions_instances() {
        let ds = tiny();
        let (tr, te) = ds.split(0.25, 1);
        assert_eq!(tr.n() + te.n(), 4);
        assert_eq!(te.n(), 1);
    }

    #[test]
    fn sparsity_counts_zeros() {
        let ds = tiny();
        assert!((ds.sparsity() - 5.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "targets must be n × d")]
    fn target_shape_checked() {
        let features = DenseMatrix::from_rows(&[vec![1.0]]);
        let _ = Dataset::new(features, vec![1.0, 2.0, 3.0], 2, Task::MultiRegression);
    }
}
