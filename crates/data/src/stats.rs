//! Dataset profiling: the summary statistics the adaptive systems key
//! off (sparsity, cardinalities, label balance) in one report.

use crate::{Dataset, Task};
use serde::{Deserialize, Serialize};

/// Per-feature summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureStats {
    /// Minimum value.
    pub min: f32,
    /// Maximum value.
    pub max: f32,
    /// Mean value.
    pub mean: f64,
    /// Standard deviation.
    pub std: f64,
    /// Non-zero entries.
    pub nnz: usize,
    /// Distinct values (drives the exact-vs-quantile binning choice).
    pub distinct: usize,
}

/// Whole-dataset profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Instances.
    pub n: usize,
    /// Features.
    pub m: usize,
    /// Outputs.
    pub d: usize,
    /// Task type.
    pub task: Task,
    /// Overall zero fraction.
    pub sparsity: f64,
    /// Per-feature summaries.
    pub features: Vec<FeatureStats>,
    /// Per-output positive/target mass: class frequencies for
    /// multiclass, label rates for multilabel, target means for
    /// regression.
    pub output_profile: Vec<f64>,
}

/// Profile a dataset.
pub fn describe(ds: &Dataset) -> DatasetStats {
    let (n, m, d) = (ds.n(), ds.m(), ds.d());
    let features = (0..m)
        .map(|j| {
            let col = ds.features().col(j);
            let mut min = f32::INFINITY;
            let mut max = f32::NEG_INFINITY;
            let mut sum = 0.0f64;
            let mut nnz = 0usize;
            for &v in &col {
                min = min.min(v);
                max = max.max(v);
                sum += v as f64;
                if v != 0.0 {
                    nnz += 1;
                }
            }
            let mean = sum / n.max(1) as f64;
            let var = col.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n.max(1) as f64;
            let mut sorted = col;
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
            sorted.dedup();
            FeatureStats {
                min,
                max,
                mean,
                std: var.sqrt(),
                nnz,
                distinct: sorted.len(),
            }
        })
        .collect();

    let mut output_profile = vec![0.0f64; d];
    for i in 0..n {
        for (k, &t) in ds.target_row(i).iter().enumerate() {
            output_profile[k] += t as f64;
        }
    }
    for p in &mut output_profile {
        *p /= n.max(1) as f64;
    }

    DatasetStats {
        n,
        m,
        d,
        task: ds.task(),
        sparsity: ds.sparsity(),
        features,
        output_profile,
    }
}

impl DatasetStats {
    /// Class-imbalance ratio: most frequent over least frequent output
    /// mass (1.0 = perfectly balanced; meaningful for classification).
    pub fn imbalance(&self) -> f64 {
        let max = self.output_profile.iter().cloned().fold(f64::MIN, f64::max);
        let min = self
            .output_profile
            .iter()
            .cloned()
            .fold(f64::MAX, f64::min)
            .max(1e-12);
        max / min
    }

    /// Features whose distinct-value count fits exact (loss-free)
    /// binning at `max_bins`.
    pub fn exactly_binnable(&self, max_bins: usize) -> usize {
        self.features
            .iter()
            .filter(|f| f.distinct <= max_bins)
            .count()
    }

    /// Constant (zero-information) features.
    pub fn constant_features(&self) -> usize {
        self.features.iter().filter(|f| f.distinct <= 1).count()
    }

    /// Compact multi-line report.
    pub fn report(&self) -> String {
        format!(
            "{} × {} → {} ({:?})\n\
             sparsity {:.1}%, {} constant features, {} of {} exactly binnable @256\n\
             output imbalance {:.2}×",
            self.n,
            self.m,
            self.d,
            self.task,
            100.0 * self.sparsity,
            self.constant_features(),
            self.exactly_binnable(256),
            self.m,
            self.imbalance()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{make_classification, ClassificationSpec};
    use crate::DenseMatrix;

    #[test]
    fn describe_computes_correct_feature_stats() {
        let features = DenseMatrix::from_rows(&[
            vec![1.0, 0.0],
            vec![3.0, 0.0],
            vec![1.0, 5.0],
            vec![3.0, 0.0],
        ]);
        let targets = vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0];
        let ds = Dataset::new(features, targets, 2, Task::MultiClass);
        let s = describe(&ds);
        assert_eq!((s.n, s.m, s.d), (4, 2, 2));
        let f0 = &s.features[0];
        assert_eq!((f0.min, f0.max), (1.0, 3.0));
        assert_eq!(f0.mean, 2.0);
        assert_eq!(f0.nnz, 4);
        assert_eq!(f0.distinct, 2);
        let f1 = &s.features[1];
        assert_eq!(f1.nnz, 1);
        assert_eq!(f1.distinct, 2);
        // Output masses: class 0 twice, class 1 twice → 0.5 each.
        assert_eq!(s.output_profile, vec![0.5, 0.5]);
        assert!((s.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn synthetic_profiles_are_plausible() {
        let ds = make_classification(&ClassificationSpec {
            instances: 500,
            features: 10,
            classes: 5,
            informative: 6,
            sparsity: 0.4,
            seed: 1,
            ..Default::default()
        });
        let s = describe(&ds);
        assert!((s.sparsity - 0.4).abs() < 0.05);
        assert!(s.imbalance() < 1.5, "balanced generator: {}", s.imbalance());
        assert_eq!(s.constant_features(), 0);
        assert!(s.report().contains("sparsity"));
    }

    #[test]
    fn constant_feature_detected() {
        let features = DenseMatrix::from_rows(&[vec![7.0, 1.0], vec![7.0, 2.0]]);
        let ds = Dataset::new(features, vec![0.0, 1.0], 1, Task::MultiRegression);
        let s = describe(&ds);
        assert_eq!(s.constant_features(), 1);
        assert_eq!(s.features[0].std, 0.0);
    }
}
