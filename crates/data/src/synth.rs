//! Synthetic multi-output dataset generators.
//!
//! The paper's class-count sweep (§4.3.3, Fig. 6b) uses "scikit-learn's
//! multi-class API"; these generators mirror `make_classification`,
//! `make_regression` and `make_multilabel_classification` closely enough
//! to reproduce that experiment and to synthesize shape-faithful stand-
//! ins for the nine real datasets of Table 1 (see [`crate::datasets`]).
//!
//! All randomness is ChaCha-seeded and fully deterministic.

use crate::dense::DenseMatrix;
use crate::{Dataset, Task};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Standard-normal sample via Box–Muller (keeps the dependency set to
/// plain `rand`).
fn normal(rng: &mut ChaCha8Rng) -> f32 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Pick `count` hypercube vertices of dimension `dim`, all distinct
/// whenever the cube has at least `count` vertices (rejection sampling;
/// deterministic even-spread with repeats only when it does not).
///
/// Distinctness matters: if two centroids of *different classes* landed
/// on the same vertex, those classes would overlap completely and the
/// labels would be unlearnable from the features — sklearn's
/// `make_classification` places clusters on distinct vertices for the
/// same reason.
fn distinct_vertices(dim: usize, count: usize, rng: &mut ChaCha8Rng) -> Vec<u64> {
    let bits = dim.min(63) as u32;
    let capacity = 1u64 << bits;
    if capacity >= count as u64 {
        let mut seen = std::collections::HashSet::with_capacity(count);
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let v = rng.gen_range(0..capacity);
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    } else {
        // More centroids than corners: spread as evenly as possible.
        (0..count as u64).map(|c| c % capacity).collect()
    }
}

/// Zero out entries with probability `sparsity` (post-hoc sparsification
/// shared by all generators).
fn sparsify(x: &mut DenseMatrix, sparsity: f64, rng: &mut ChaCha8Rng) {
    if sparsity <= 0.0 {
        return;
    }
    for i in 0..x.rows() {
        for j in 0..x.cols() {
            if rng.gen_bool(sparsity) {
                x.set(i, j, 0.0);
            }
        }
    }
}

/// Specification for [`make_classification`].
#[derive(Debug, Clone)]
pub struct ClassificationSpec {
    /// Number of instances.
    pub instances: usize,
    /// Number of input features.
    pub features: usize,
    /// Number of classes (the output dimension `d`).
    pub classes: usize,
    /// Number of informative features (≤ features).
    pub informative: usize,
    /// Gaussian clusters per class.
    pub clusters_per_class: usize,
    /// Distance scale between class centroids.
    pub class_sep: f32,
    /// Probability of assigning a uniformly random label (label noise).
    pub flip_y: f64,
    /// Probability of zeroing any feature entry.
    pub sparsity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ClassificationSpec {
    fn default() -> Self {
        ClassificationSpec {
            instances: 1000,
            features: 20,
            classes: 3,
            informative: 10,
            clusters_per_class: 2,
            class_sep: 1.5,
            flip_y: 0.01,
            sparsity: 0.0,
            seed: 0,
        }
    }
}

/// Gaussian-cluster multiclass generator (à la sklearn
/// `make_classification`). Classes are balanced to within one instance.
pub fn make_classification(spec: &ClassificationSpec) -> Dataset {
    assert!(spec.classes >= 2, "need at least 2 classes");
    assert!(
        spec.informative >= 1 && spec.informative <= spec.features,
        "informative must be in 1..=features"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let (n, m, d) = (spec.instances, spec.features, spec.classes);
    let inf = spec.informative;

    // Centroids: one per (class, cluster), each on its own hypercube
    // vertex (jittered). Vertices are distinct so that no two classes
    // collapse onto the same corner; see [`distinct_vertices`].
    let num_centroids = d * spec.clusters_per_class.max(1);
    let vertices = distinct_vertices(inf, num_centroids, &mut rng);
    let centroids: Vec<Vec<f32>> = vertices
        .iter()
        .map(|&v| {
            (0..inf)
                .map(|j| {
                    let sign = if (v >> (j as u32 % 64)) & 1 == 1 {
                        1.0
                    } else {
                        -1.0
                    };
                    sign * spec.class_sep + 0.3 * normal(&mut rng)
                })
                .collect()
        })
        .collect();

    let mut x = DenseMatrix::zeros(n, m);
    let mut targets = vec![0.0f32; n * d];
    for i in 0..n {
        let true_class = i % d; // balanced
        let cluster = rng.gen_range(0..spec.clusters_per_class.max(1));
        let centroid = &centroids[true_class * spec.clusters_per_class.max(1) + cluster];
        for (j, &c) in centroid.iter().enumerate().take(inf) {
            x.set(i, j, c + normal(&mut rng));
        }
        for j in inf..m {
            x.set(i, j, normal(&mut rng)); // pure noise features
        }
        let label = if spec.flip_y > 0.0 && rng.gen_bool(spec.flip_y) {
            rng.gen_range(0..d)
        } else {
            true_class
        };
        targets[i * d + label] = 1.0;
    }
    sparsify(&mut x, spec.sparsity, &mut rng);
    Dataset::new(x, targets, d, Task::MultiClass)
}

/// Specification for [`make_regression`].
#[derive(Debug, Clone)]
pub struct RegressionSpec {
    /// Number of instances.
    pub instances: usize,
    /// Number of input features.
    pub features: usize,
    /// Output dimension `d`.
    pub outputs: usize,
    /// Number of informative features.
    pub informative: usize,
    /// Standard deviation of additive target noise.
    pub noise: f32,
    /// Apply a tanh nonlinearity so trees have structure to find.
    pub nonlinear: bool,
    /// Probability of zeroing any feature entry.
    pub sparsity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RegressionSpec {
    fn default() -> Self {
        RegressionSpec {
            instances: 1000,
            features: 20,
            outputs: 4,
            informative: 10,
            noise: 0.1,
            nonlinear: true,
            sparsity: 0.0,
            seed: 0,
        }
    }
}

/// Linear (optionally tanh-warped) multi-output regression generator.
pub fn make_regression(spec: &RegressionSpec) -> Dataset {
    assert!(spec.outputs >= 1, "need at least 1 output");
    assert!(
        spec.informative >= 1 && spec.informative <= spec.features,
        "informative must be in 1..=features"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let (n, m, d) = (spec.instances, spec.features, spec.outputs);

    // Weight matrix over informative features only.
    let w: Vec<f32> = (0..spec.informative * d)
        .map(|_| normal(&mut rng))
        .collect();

    let mut x = DenseMatrix::zeros(n, m);
    for i in 0..n {
        for j in 0..m {
            x.set(i, j, normal(&mut rng));
        }
    }
    let mut targets = vec![0.0f32; n * d];
    for i in 0..n {
        for k in 0..d {
            let mut acc = 0.0f32;
            for j in 0..spec.informative {
                acc += x.get(i, j) * w[j * d + k];
            }
            if spec.nonlinear {
                acc = acc.tanh() * 3.0 + 0.2 * acc;
            }
            targets[i * d + k] = acc + spec.noise * normal(&mut rng);
        }
    }
    sparsify(&mut x, spec.sparsity, &mut rng);
    Dataset::new(x, targets, d, Task::MultiRegression)
}

/// Specification for [`make_multilabel`].
#[derive(Debug, Clone)]
pub struct MultilabelSpec {
    /// Number of instances.
    pub instances: usize,
    /// Number of input features.
    pub features: usize,
    /// Number of labels (the output dimension `d`).
    pub labels: usize,
    /// Mean active labels per instance.
    pub avg_labels: f64,
    /// Features each label's prototype touches.
    pub features_per_label: usize,
    /// Probability of zeroing any feature entry (on top of the natural
    /// sparsity of prototype sums).
    pub sparsity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MultilabelSpec {
    fn default() -> Self {
        MultilabelSpec {
            instances: 1000,
            features: 50,
            labels: 10,
            avg_labels: 2.5,
            features_per_label: 8,
            sparsity: 0.0,
            seed: 0,
        }
    }
}

/// Topic-model-style multilabel generator: each label owns a sparse
/// feature prototype; an instance activates a few labels and its feature
/// vector is the noisy sum of the active prototypes (text-bag flavour,
/// matching Delicious/NUS-WIDE-like data).
pub fn make_multilabel(spec: &MultilabelSpec) -> Dataset {
    assert!(spec.labels >= 2, "need at least 2 labels");
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let (n, m, d) = (spec.instances, spec.features, spec.labels);
    let fpl = spec.features_per_label.clamp(1, m);

    // Sparse prototypes: (feature, weight) lists.
    let prototypes: Vec<Vec<(usize, f32)>> = (0..d)
        .map(|_| {
            (0..fpl)
                .map(|_| (rng.gen_range(0..m), 1.0 + rng.gen::<f32>() * 2.0))
                .collect()
        })
        .collect();

    let mut x = DenseMatrix::zeros(n, m);
    let mut targets = vec![0.0f32; n * d];
    let p_active = (spec.avg_labels / d as f64).clamp(1e-6, 1.0);
    for i in 0..n {
        let mut any = false;
        for k in 0..d {
            if rng.gen_bool(p_active) {
                targets[i * d + k] = 1.0;
                any = true;
                for &(j, wgt) in &prototypes[k] {
                    x.set(i, j, x.get(i, j) + wgt + 0.25 * normal(&mut rng));
                }
            }
        }
        if !any {
            // Guarantee at least one active label per instance.
            let k = rng.gen_range(0..d);
            targets[i * d + k] = 1.0;
            for &(j, wgt) in &prototypes[k] {
                x.set(i, j, x.get(i, j) + wgt + 0.25 * normal(&mut rng));
            }
        }
    }
    sparsify(&mut x, spec.sparsity, &mut rng);
    Dataset::new(x, targets, d, Task::MultiLabel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_shape_and_balance() {
        let ds = make_classification(&ClassificationSpec {
            instances: 300,
            features: 12,
            classes: 3,
            informative: 6,
            seed: 1,
            ..Default::default()
        });
        assert_eq!((ds.n(), ds.m(), ds.d()), (300, 12, 3));
        assert_eq!(ds.task(), Task::MultiClass);
        // Each target row is one-hot.
        for i in 0..ds.n() {
            let s: f32 = ds.target_row(i).iter().sum();
            assert_eq!(s, 1.0);
        }
        // Balanced within noise.
        let labels = ds.labels();
        for c in 0..3u32 {
            let cnt = labels.iter().filter(|&&l| l == c).count();
            assert!((80..=120).contains(&cnt), "class {c} count {cnt}");
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index math mirrors the formulas
    fn classification_is_learnable_by_centroid_rule() {
        // A nearest-centroid classifier on informative dims should beat
        // chance by a wide margin — guards against a broken generator.
        let ds = make_classification(&ClassificationSpec {
            instances: 600,
            features: 10,
            classes: 3,
            informative: 8,
            class_sep: 2.0,
            flip_y: 0.0,
            seed: 5,
            ..Default::default()
        });
        let labels = ds.labels();
        // Class centroids from the first half; evaluate on second half.
        let d = 3usize;
        let inf = 8usize;
        let mut cent = vec![vec![0.0f64; inf]; d];
        let mut cnt = vec![0usize; d];
        for i in 0..300 {
            let c = labels[i] as usize;
            cnt[c] += 1;
            for j in 0..inf {
                cent[c][j] += ds.features().get(i, j) as f64;
            }
        }
        for c in 0..d {
            for j in 0..inf {
                cent[c][j] /= cnt[c].max(1) as f64;
            }
        }
        let mut correct = 0;
        for i in 300..600 {
            let mut best = (0usize, f64::INFINITY);
            for (c, ctr) in cent.iter().enumerate() {
                let dist: f64 = (0..inf)
                    .map(|j| (ds.features().get(i, j) as f64 - ctr[j]).powi(2))
                    .sum();
                if dist < best.1 {
                    best = (c, dist);
                }
            }
            if best.0 == labels[i] as usize {
                correct += 1;
            }
        }
        let acc = correct as f64 / 300.0;
        assert!(acc > 0.6, "nearest-centroid accuracy only {acc}");
    }

    #[test]
    fn classification_deterministic_per_seed() {
        let spec = ClassificationSpec {
            instances: 50,
            seed: 9,
            ..Default::default()
        };
        let a = make_classification(&spec);
        let b = make_classification(&spec);
        assert_eq!(a.features().values(), b.features().values());
        assert_eq!(a.targets(), b.targets());
    }

    #[test]
    fn regression_shape_and_signal() {
        let ds = make_regression(&RegressionSpec {
            instances: 400,
            features: 10,
            outputs: 3,
            informative: 5,
            noise: 0.01,
            seed: 2,
            ..Default::default()
        });
        assert_eq!((ds.n(), ds.m(), ds.d()), (400, 10, 3));
        assert_eq!(ds.task(), Task::MultiRegression);
        // Targets have non-trivial variance.
        let mean: f32 = ds.targets().iter().sum::<f32>() / ds.targets().len() as f32;
        let var: f32 = ds
            .targets()
            .iter()
            .map(|t| (t - mean) * (t - mean))
            .sum::<f32>()
            / ds.targets().len() as f32;
        assert!(var > 0.1, "target variance {var}");
    }

    #[test]
    fn multilabel_every_instance_has_a_label() {
        let ds = make_multilabel(&MultilabelSpec {
            instances: 200,
            features: 30,
            labels: 8,
            seed: 3,
            ..Default::default()
        });
        assert_eq!(ds.task(), Task::MultiLabel);
        for i in 0..ds.n() {
            let active: f32 = ds.target_row(i).iter().sum();
            assert!(active >= 1.0, "instance {i} has no labels");
        }
    }

    #[test]
    fn multilabel_average_label_count_in_range() {
        let ds = make_multilabel(&MultilabelSpec {
            instances: 2000,
            features: 40,
            labels: 20,
            avg_labels: 3.0,
            seed: 4,
            ..Default::default()
        });
        let total: f32 = ds.targets().iter().sum();
        let avg = total / ds.n() as f32;
        assert!((2.0..=4.5).contains(&avg), "avg labels {avg}");
    }

    #[test]
    fn sparsity_parameter_produces_zeros() {
        let ds = make_classification(&ClassificationSpec {
            instances: 200,
            features: 20,
            sparsity: 0.7,
            seed: 6,
            ..Default::default()
        });
        assert!(ds.sparsity() > 0.6, "sparsity {}", ds.sparsity());
    }

    #[test]
    #[should_panic(expected = "at least 2 classes")]
    fn classification_validates_classes() {
        let _ = make_classification(&ClassificationSpec {
            classes: 1,
            ..Default::default()
        });
    }
}
