//! Deterministic instance splitting (the paper holds out 20% of
//! training instances for datasets that ship without a test set, §4.1).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Shuffle `0..n` with `seed` and split off `frac` as test indices.
/// Returns `(train, test)`. When `0 < frac < 1` and `n ≥ 2`, both halves
/// are non-empty.
pub fn split_indices(n: usize, frac: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!((0.0..=1.0).contains(&frac), "frac must be in [0, 1]");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let mut test_len = (n as f64 * frac).round() as usize;
    if frac > 0.0 && frac < 1.0 && n >= 2 {
        test_len = test_len.clamp(1, n - 1);
    }
    let test = idx.split_off(n - test_len);
    (idx, test)
}

/// `k`-fold cross-validation index sets: returns `k` (train, validation)
/// pairs covering `0..n`.
pub fn kfold_indices(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2 && k <= n, "need 2 ≤ k ≤ n (k={k}, n={n})");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let base = n / k;
    let extra = n % k;
    let mut folds = Vec::with_capacity(k);
    let mut start = 0;
    for f in 0..k {
        let len = base + usize::from(f < extra);
        folds.push(idx[start..start + len].to_vec());
        start += len;
    }
    (0..k)
        .map(|f| {
            let val = folds[f].clone();
            let train = folds
                .iter()
                .enumerate()
                .filter(|&(g, _)| g != f)
                .flat_map(|(_, fold)| fold.iter().copied())
                .collect();
            (train, val)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn split_is_a_partition() {
        let (tr, te) = split_indices(100, 0.2, 7);
        assert_eq!(tr.len(), 80);
        assert_eq!(te.len(), 20);
        let all: HashSet<usize> = tr.iter().chain(te.iter()).copied().collect();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        assert_eq!(split_indices(50, 0.3, 1), split_indices(50, 0.3, 1));
        assert_ne!(split_indices(50, 0.3, 1).1, split_indices(50, 0.3, 2).1);
    }

    #[test]
    fn tiny_fracs_keep_both_sides_nonempty() {
        let (tr, te) = split_indices(10, 0.01, 3);
        assert!(!te.is_empty());
        assert!(!tr.is_empty());
        let (tr, te) = split_indices(10, 0.99, 3);
        assert!(!te.is_empty());
        assert!(!tr.is_empty());
    }

    #[test]
    fn frac_extremes() {
        let (tr, te) = split_indices(10, 0.0, 3);
        assert_eq!((tr.len(), te.len()), (10, 0));
        let (tr, te) = split_indices(10, 1.0, 3);
        assert_eq!((tr.len(), te.len()), (0, 10));
    }

    #[test]
    fn kfold_covers_everything_once() {
        let folds = kfold_indices(103, 5, 9);
        assert_eq!(folds.len(), 5);
        let mut seen = vec![0u32; 103];
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 103);
            for &i in val {
                seen[i] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "each index in exactly one fold"
        );
    }

    #[test]
    #[should_panic(expected = "need 2 ≤ k ≤ n")]
    fn kfold_validates_k() {
        let _ = kfold_indices(3, 5, 0);
    }
}
