//! Shape-faithful synthetic replicas of the paper's nine evaluation
//! datasets (Table 1).
//!
//! The real datasets are not redistributable here, so each is replaced
//! by a synthetic stand-in generated with matching shape — instance
//! count, feature count, output dimension, task type and approximate
//! feature sparsity. Histogram-building cost (the paper's bottleneck)
//! depends exactly on these shape parameters plus the bin-collision
//! distribution, so the timing experiments transfer; absolute accuracy
//! values do not, and EXPERIMENTS.md flags that.
//!
//! Because several full-size configurations need multi-GB histograms,
//! every dataset can be generated at a `scale` factor on the instance
//! count and with caps on features/outputs; the defaults used by the
//! benchmark driver are in [`PaperDataset::bench_shape`].

use crate::synth::{
    make_classification, make_multilabel, make_regression, ClassificationSpec, MultilabelSpec,
    RegressionSpec,
};
use crate::{Dataset, Task};
use serde::{Deserialize, Serialize};

/// The nine datasets of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperDataset {
    /// Otto Group product classification: 61,878 × 93, 9 classes.
    Otto,
    /// San Francisco crime: 878,049 × 10, 39 classes.
    SfCrime,
    /// Helena (AutoML): 65,196 × 27, 100 classes.
    Helena,
    /// Caltech101 silhouettes: 6,073 × 324, 101 classes.
    Caltech101,
    /// MNIST digits: 50,000 × 784, 10 classes.
    Mnist,
    /// MNIST-Inpainting: 50,000 × 200, 24 regression outputs.
    MnistIn,
    /// River flow RF1: 9,125 × 61, 16 regression outputs.
    Rf1,
    /// Delicious bookmarks: 16,105 × 500, 983 labels.
    Delicious,
    /// NUS-WIDE images: 161,789 × 128, 81 labels.
    NusWide,
}

/// All nine datasets in Table 1 order.
pub const PAPER_DATASETS: [PaperDataset; 9] = [
    PaperDataset::Otto,
    PaperDataset::SfCrime,
    PaperDataset::Helena,
    PaperDataset::Caltech101,
    PaperDataset::Mnist,
    PaperDataset::MnistIn,
    PaperDataset::Rf1,
    PaperDataset::Delicious,
    PaperDataset::NusWide,
];

/// Static shape of one dataset, mirroring Table 1 plus an assumed
/// feature sparsity used by the generator.
///
/// Serialize-only: `name` borrows `'static` display-name literals,
/// which cannot be reconstructed from transient JSON input.
#[derive(Debug, Clone, Serialize)]
pub struct DatasetShape {
    /// Display name as printed in the paper.
    pub name: &'static str,
    /// Instance count (`#instances`).
    pub instances: usize,
    /// Feature count (`#features`).
    pub features: usize,
    /// Output dimension (`#outputs`).
    pub outputs: usize,
    /// Task type.
    pub task: Task,
    /// Approximate fraction of zero feature entries.
    pub sparsity: f64,
}

impl PaperDataset {
    /// Table 1 shape of this dataset.
    pub fn shape(&self) -> DatasetShape {
        use PaperDataset::*;
        use Task::*;
        match self {
            Otto => DatasetShape {
                name: "Otto",
                instances: 61_878,
                features: 93,
                outputs: 9,
                task: MultiClass,
                sparsity: 0.60,
            },
            SfCrime => DatasetShape {
                name: "SF-Crime",
                instances: 878_049,
                features: 10,
                outputs: 39,
                task: MultiClass,
                sparsity: 0.10,
            },
            Helena => DatasetShape {
                name: "Helena",
                instances: 65_196,
                features: 27,
                outputs: 100,
                task: MultiClass,
                sparsity: 0.05,
            },
            Caltech101 => DatasetShape {
                name: "Caltech101",
                instances: 6_073,
                features: 324,
                outputs: 101,
                task: MultiClass,
                sparsity: 0.50,
            },
            Mnist => DatasetShape {
                name: "MNIST",
                instances: 50_000,
                features: 784,
                outputs: 10,
                task: MultiClass,
                sparsity: 0.80,
            },
            MnistIn => DatasetShape {
                name: "MNIST-IN",
                instances: 50_000,
                features: 200,
                outputs: 24,
                task: MultiRegression,
                sparsity: 0.55,
            },
            Rf1 => DatasetShape {
                name: "RF1",
                instances: 9_125,
                features: 61,
                outputs: 16,
                task: MultiRegression,
                sparsity: 0.05,
            },
            Delicious => DatasetShape {
                name: "Delicious",
                instances: 16_105,
                features: 500,
                outputs: 983,
                task: MultiLabel,
                sparsity: 0.95,
            },
            NusWide => DatasetShape {
                name: "NUS-WIDE",
                instances: 161_789,
                features: 128,
                outputs: 81,
                task: MultiLabel,
                sparsity: 0.30,
            },
        }
    }

    /// Shape actually used by the CI-sized benchmark driver:
    /// `(scale_n, feature_cap, output_cap)`. Chosen so the slowest
    /// configuration stays within seconds of host time and the largest
    /// per-level histogram within ~100 MB, while preserving each
    /// dataset's character (wide vs tall vs many-output).
    pub fn bench_shape(&self) -> (f64, usize, usize) {
        use PaperDataset::*;
        match self {
            Otto => (0.03, 93, 9),
            SfCrime => (0.003, 10, 39),
            Helena => (0.02, 27, 100),
            Caltech101 => (0.15, 120, 40),
            Mnist => (0.02, 200, 10),
            MnistIn => (0.02, 100, 24),
            Rf1 => (0.10, 61, 16),
            Delicious => (0.037, 120, 50),
            NusWide => (0.006, 64, 40),
        }
    }

    /// Generate the synthetic stand-in at full Table 1 shape.
    pub fn generate_full(&self, seed: u64) -> Dataset {
        self.generate(1.0, usize::MAX, usize::MAX, seed)
    }

    /// Generate at the benchmark driver's default reduced shape.
    pub fn generate_bench(&self, seed: u64) -> Dataset {
        let (scale, m_cap, d_cap) = self.bench_shape();
        self.generate(scale, m_cap, d_cap, seed)
    }

    /// Generate with an instance-count `scale` and caps on features and
    /// outputs. Scaled instance count is floored at 300.
    pub fn generate(
        &self,
        scale: f64,
        feature_cap: usize,
        output_cap: usize,
        seed: u64,
    ) -> Dataset {
        let s = self.shape();
        let n = ((s.instances as f64 * scale) as usize).max(300);
        let m = s.features.min(feature_cap);
        let d = s.outputs.min(output_cap).max(2);
        match s.task {
            Task::MultiClass => make_classification(&ClassificationSpec {
                instances: n,
                features: m,
                classes: d,
                informative: (m / 2).max(1),
                clusters_per_class: 1 + (d < 20) as usize,
                class_sep: 1.8,
                flip_y: 0.02,
                sparsity: s.sparsity,
                seed,
            }),
            Task::MultiRegression => make_regression(&RegressionSpec {
                instances: n,
                features: m,
                outputs: d,
                informative: (m / 2).max(1),
                noise: 0.1,
                nonlinear: true,
                sparsity: s.sparsity,
                seed,
            }),
            Task::MultiLabel => make_multilabel(&MultilabelSpec {
                instances: n,
                features: m,
                labels: d,
                avg_labels: (d as f64 * 0.05).clamp(1.5, 20.0),
                features_per_label: (m / 16).max(3),
                sparsity: s.sparsity * 0.5, // prototypes already sparse
                seed,
            }),
        }
    }

    /// Render Table 1 for the `repro datasets` subcommand.
    pub fn table1() -> String {
        let mut out = format!(
            "{:<12} {:>10} {:>10} {:>9} {:>14}\n",
            "Dataset", "#instances", "#features", "#outputs", "task"
        );
        for ds in PAPER_DATASETS {
            let s = ds.shape();
            out.push_str(&format!(
                "{:<12} {:>10} {:>10} {:>9} {:>14}\n",
                s.name,
                s.instances,
                s.features,
                s.outputs,
                match s.task {
                    Task::MultiClass => "multiclass",
                    Task::MultiLabel => "multilabel",
                    Task::MultiRegression => "multiregress",
                }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes_match_paper() {
        let otto = PaperDataset::Otto.shape();
        assert_eq!(
            (otto.instances, otto.features, otto.outputs),
            (61_878, 93, 9)
        );
        let del = PaperDataset::Delicious.shape();
        assert_eq!(
            (del.instances, del.features, del.outputs),
            (16_105, 500, 983)
        );
        assert_eq!(del.task, Task::MultiLabel);
        let sf = PaperDataset::SfCrime.shape();
        assert_eq!(sf.instances, 878_049);
        assert_eq!(PAPER_DATASETS.len(), 9);
    }

    #[test]
    fn generated_bench_shapes_respect_caps() {
        for ds in PAPER_DATASETS {
            let data = ds.generate(0.01, 50, 20, 7);
            let s = ds.shape();
            assert!(data.n() >= 300);
            assert!(data.m() <= 50.min(s.features));
            assert!(data.d() <= 20);
            assert_eq!(data.task(), s.task);
        }
    }

    #[test]
    fn generated_task_types_match() {
        let d = PaperDataset::Mnist.generate(0.01, 64, 10, 1);
        assert_eq!(d.task(), Task::MultiClass);
        let d = PaperDataset::Rf1.generate(0.1, 64, 16, 1);
        assert_eq!(d.task(), Task::MultiRegression);
        let d = PaperDataset::NusWide.generate(0.005, 64, 20, 1);
        assert_eq!(d.task(), Task::MultiLabel);
    }

    #[test]
    fn sparse_datasets_come_out_sparse() {
        let d = PaperDataset::Mnist.generate(0.01, 100, 10, 3);
        assert!(
            d.sparsity() > 0.5,
            "MNIST stand-in sparsity {}",
            d.sparsity()
        );
        let dense = PaperDataset::Helena.generate(0.01, 27, 10, 3);
        assert!(
            dense.sparsity() < 0.3,
            "Helena stand-in sparsity {}",
            dense.sparsity()
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PaperDataset::Otto.generate(0.01, 30, 9, 11);
        let b = PaperDataset::Otto.generate(0.01, 30, 9, 11);
        assert_eq!(a.features().values(), b.features().values());
    }

    #[test]
    fn table1_renders_all_rows() {
        let t = PaperDataset::table1();
        for ds in PAPER_DATASETS {
            assert!(t.contains(ds.shape().name), "missing {}", ds.shape().name);
        }
    }
}
