//! Exclusive Feature Bundling (EFB, from LightGBM).
//!
//! The paper's sparse datasets (Delicious: 500 features at 95% zeros)
//! spend histogram time on columns that are almost never simultaneously
//! non-zero. EFB packs such *mutually exclusive* features into shared
//! columns — each bundled feature's non-zero values are shifted into a
//! disjoint value range — cutting the effective feature count `m` that
//! every histogram pass multiplies by, at zero information loss when
//! features never conflict (and bounded loss under a conflict budget).
//!
//! Workflow: [`plan_bundles`] over the CSC view → [`BundlePlan::apply`]
//! to produce the bundled matrix + the transform to apply to inference
//! rows.

use crate::csc::CscMatrix;
use crate::dense::DenseMatrix;
use serde::{Deserialize, Serialize};

/// A bundling plan: which original features share each bundled column,
/// and the value ranges used to keep them separable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BundlePlan {
    /// `bundles[b]` lists original feature indices packed into bundled
    /// column `b` (singleton bundles are unbundled features).
    pub bundles: Vec<Vec<usize>>,
    /// Per original feature: `(min, max)` of its non-zero values,
    /// used to normalize into the bundle's slot.
    ranges: Vec<(f32, f32)>,
    /// Original feature count.
    num_features: usize,
}

/// Rows where *both* of two features are non-zero, given their sorted
/// row-index lists.
fn conflicts(a: &[u32], b: &[u32]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut c = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

/// Greedily bundle features whose pairwise conflict count stays within
/// `max_conflict_rate × n` per bundle. Features are visited by
/// descending non-zero count (the LightGBM ordering); each lands in the
/// first bundle it fits or opens a new one.
pub fn plan_bundles(csc: &CscMatrix, max_conflict_rate: f64) -> BundlePlan {
    assert!(
        (0.0..1.0).contains(&max_conflict_rate),
        "conflict rate must be in [0, 1)"
    );
    let m = csc.cols();
    let n = csc.rows();
    let budget = (max_conflict_rate * n as f64).floor() as usize;

    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by_key(|&f| std::cmp::Reverse(csc.col(f).0.len()));

    // Per bundle: member features and the union of occupied rows
    // (sorted), plus conflicts already spent.
    let mut bundles: Vec<Vec<usize>> = Vec::new();
    let mut occupied: Vec<Vec<u32>> = Vec::new();
    let mut spent: Vec<usize> = Vec::new();

    for f in order {
        let (rows, _) = csc.col(f);
        let mut placed = false;
        for b in 0..bundles.len() {
            let c = conflicts(&occupied[b], rows);
            if spent[b] + c <= budget {
                bundles[b].push(f);
                spent[b] += c;
                // Merge sorted row lists.
                let mut merged = Vec::with_capacity(occupied[b].len() + rows.len());
                let (mut i, mut j) = (0, 0);
                while i < occupied[b].len() || j < rows.len() {
                    let take_left =
                        j >= rows.len() || (i < occupied[b].len() && occupied[b][i] <= rows[j]);
                    if take_left {
                        let v = occupied[b][i];
                        i += 1;
                        if j < rows.len() && rows.get(j) == Some(&v) {
                            j += 1;
                        }
                        merged.push(v);
                    } else {
                        merged.push(rows[j]);
                        j += 1;
                    }
                }
                occupied[b] = merged;
                placed = true;
                break;
            }
        }
        if !placed {
            bundles.push(vec![f]);
            occupied.push(rows.to_vec());
            spent.push(0);
        }
    }
    // Deterministic output order: by smallest member feature.
    for b in &mut bundles {
        b.sort_unstable();
    }
    bundles.sort_by_key(|b| b[0]);

    let ranges = (0..m)
        .map(|f| {
            let (_, vals) = csc.col(f);
            let mut min = f32::INFINITY;
            let mut max = f32::NEG_INFINITY;
            for &v in vals {
                min = min.min(v);
                max = max.max(v);
            }
            if vals.is_empty() {
                (0.0, 0.0)
            } else {
                (min, max)
            }
        })
        .collect();

    BundlePlan {
        bundles,
        ranges,
        num_features: m,
    }
}

impl BundlePlan {
    /// Number of bundled columns (≤ original features).
    pub fn num_bundles(&self) -> usize {
        self.bundles.len()
    }

    /// Original feature count the plan was built for.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Bundled value of original feature `f` (slot `slot` within its
    /// bundle) for raw value `v`: non-zeros are normalized into
    /// `(slot, slot + 1]`, zeros stay 0 ("no member active").
    fn encode(&self, f: usize, slot: usize, v: f32) -> f32 {
        if v == 0.0 {
            return 0.0;
        }
        let (min, max) = self.ranges[f];
        let unit = if max > min {
            (v - min) / (max - min)
        } else {
            1.0
        };
        // Clamp into (0, 1] so an active feature never collides with the
        // "no member active" zero of slot 0.
        slot as f32 + unit.clamp(1e-6, 1.0)
    }

    /// Transform one raw feature row into bundled space.
    pub fn transform_row(&self, row: &[f32]) -> Vec<f32> {
        assert_eq!(row.len(), self.num_features, "row width mismatch");
        self.bundles
            .iter()
            .map(|members| {
                let mut out = 0.0f32;
                for (slot, &f) in members.iter().enumerate() {
                    let v = row[f];
                    if v != 0.0 {
                        // Later slots win conflicts (bounded by budget).
                        out = self.encode(f, slot, v);
                    }
                }
                out
            })
            .collect()
    }

    /// Transform a whole matrix into bundled space.
    pub fn apply(&self, dense: &DenseMatrix) -> DenseMatrix {
        let rows: Vec<Vec<f32>> = (0..dense.rows())
            .map(|i| self.transform_row(dense.row(i)))
            .collect();
        DenseMatrix::from_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three mutually exclusive sparse features + one dense feature.
    fn exclusive_matrix() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![1.0, 0.0, 0.0, 9.0],
            vec![0.0, 2.0, 0.0, 8.0],
            vec![0.0, 0.0, 3.0, 7.0],
            vec![4.0, 0.0, 0.0, 6.0],
            vec![0.0, 5.0, 0.0, 5.0],
            vec![0.0, 0.0, 6.0, 4.0],
        ])
    }

    #[test]
    fn exclusive_features_bundle_together() {
        let m = exclusive_matrix();
        let plan = plan_bundles(&CscMatrix::from_dense(&m), 0.0);
        // Features 0, 1, 2 never co-occur → one bundle; the dense
        // feature 3 conflicts with all → alone.
        assert_eq!(plan.num_bundles(), 2, "bundles: {:?}", plan.bundles);
        let sizes: Vec<usize> = plan.bundles.iter().map(Vec::len).collect();
        assert!(sizes.contains(&3) && sizes.contains(&1));
    }

    #[test]
    fn zero_conflict_budget_preserves_separability() {
        let m = exclusive_matrix();
        let plan = plan_bundles(&CscMatrix::from_dense(&m), 0.0);
        let bundled = plan.apply(&m);
        assert_eq!(bundled.cols(), plan.num_bundles());
        // Distinct source features land in distinct value ranges: rows
        // with different active features must have different bundled
        // values (so a tree can still split them apart).
        let bundle = plan
            .bundles
            .iter()
            .position(|b| b.len() == 3)
            .expect("3-feature bundle");
        let col = bundled.col(bundle);
        // Rows 0&3 use feature 0 (slot 0), 1&4 feature 1 (slot 1),
        // 2&5 feature 2 (slot 2): slot ranges must not overlap.
        let slot_of = |v: f32| v.ceil() as i32; // values in (slot, slot+1]
        assert_eq!(slot_of(col[0]), slot_of(col[3]));
        assert_eq!(slot_of(col[1]), slot_of(col[4]));
        assert_eq!(slot_of(col[2]), slot_of(col[5]));
        assert_ne!(slot_of(col[0]), slot_of(col[1]));
        assert_ne!(slot_of(col[1]), slot_of(col[2]));
    }

    #[test]
    fn dense_features_stay_unbundled() {
        // Two dense features conflict everywhere: no bundling possible.
        let m = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let plan = plan_bundles(&CscMatrix::from_dense(&m), 0.1);
        assert_eq!(plan.num_bundles(), 2);
    }

    #[test]
    fn conflict_budget_allows_lossy_merges() {
        // Features overlap on 1 of 6 rows; a 20% budget (1.2 rows)
        // admits the merge, a 0% budget does not.
        let m = DenseMatrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0], // the conflict row
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, 0.0],
        ]);
        let csc = CscMatrix::from_dense(&m);
        assert_eq!(plan_bundles(&csc, 0.0).num_bundles(), 2);
        assert_eq!(plan_bundles(&csc, 0.2).num_bundles(), 1);
    }

    #[test]
    fn transform_row_matches_apply() {
        let m = exclusive_matrix();
        let plan = plan_bundles(&CscMatrix::from_dense(&m), 0.0);
        let bundled = plan.apply(&m);
        for i in 0..m.rows() {
            assert_eq!(plan.transform_row(m.row(i)), bundled.row(i).to_vec());
        }
    }

    #[test]
    fn monotone_within_slot() {
        // Within one source feature, bundled values preserve order — so
        // threshold splits on the original feature remain expressible.
        let m = DenseMatrix::from_rows(&[
            vec![1.0, 0.0],
            vec![2.0, 0.0],
            vec![3.0, 0.0],
            vec![0.0, 5.0],
        ]);
        let plan = plan_bundles(&CscMatrix::from_dense(&m), 0.0);
        let bundled = plan.apply(&m);
        let col = bundled.col(0);
        assert!(col[0] < col[1] && col[1] < col[2]);
    }

    #[test]
    fn sparse_synthetic_shrinks_substantially() {
        use crate::synth::{make_multilabel, MultilabelSpec};
        let ds = make_multilabel(&MultilabelSpec {
            instances: 400,
            features: 120,
            labels: 30,
            avg_labels: 2.0,
            features_per_label: 4,
            sparsity: 0.2,
            seed: 9,
        });
        let csc = CscMatrix::from_dense(ds.features());
        let plan = plan_bundles(&csc, 0.02);
        assert!(
            plan.num_bundles() * 2 < 120,
            "expected ≥2× reduction on sparse data, got {} bundles",
            plan.num_bundles()
        );
    }

    #[test]
    fn plan_is_deterministic_and_serializable() {
        let m = exclusive_matrix();
        let a = plan_bundles(&CscMatrix::from_dense(&m), 0.0);
        let b = plan_bundles(&CscMatrix::from_dense(&m), 0.0);
        assert_eq!(a, b);
        let json = serde_json::to_string(&a).unwrap();
        let back: BundlePlan = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
