//! Compressed Sparse Column storage (paper §3.2).
//!
//! The CSC representation consists of three arrays: the non-zero
//! `values` (traversed column-wise), the `row_indices` of those values,
//! and `col_pointers` with one extra trailing element marking the end of
//! the last column — exactly the layout the paper illustrates:
//!
//! ```text
//! values       = [2, 1, 6, 3, 7, 8]
//! row_indices  = [1, 4, 2, 0, 1, 4]
//! col_pointers = [0, 2, 3, 4, 4, 6]
//! ```

use crate::dense::DenseMatrix;
use serde::{Deserialize, Serialize};

/// Sparse `rows × cols` matrix in Compressed Sparse Column form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    values: Vec<f32>,
    row_indices: Vec<u32>,
    col_pointers: Vec<usize>,
}

impl CscMatrix {
    /// Build from raw CSC arrays, validating all invariants.
    pub fn new(
        rows: usize,
        cols: usize,
        values: Vec<f32>,
        row_indices: Vec<u32>,
        col_pointers: Vec<usize>,
    ) -> Self {
        assert_eq!(
            values.len(),
            row_indices.len(),
            "values and row_indices must have equal length"
        );
        assert_eq!(
            col_pointers.len(),
            cols + 1,
            "col_pointers must have cols+1 entries"
        );
        assert_eq!(col_pointers[0], 0, "col_pointers must start at 0");
        assert_eq!(
            *col_pointers.last().unwrap(),
            values.len(),
            "col_pointers must end at nnz"
        );
        assert!(
            col_pointers.windows(2).all(|w| w[0] <= w[1]),
            "col_pointers must be non-decreasing"
        );
        assert!(
            row_indices.iter().all(|&r| (r as usize) < rows),
            "row index out of range"
        );
        // Rows within a column must be strictly increasing (canonical CSC).
        for c in 0..cols {
            let seg = &row_indices[col_pointers[c]..col_pointers[c + 1]];
            assert!(
                seg.windows(2).all(|w| w[0] < w[1]),
                "row indices within column {c} must be strictly increasing"
            );
        }
        CscMatrix {
            rows,
            cols,
            values,
            row_indices,
            col_pointers,
        }
    }

    /// Convert a dense matrix, keeping entries that are not exactly zero.
    pub fn from_dense(dense: &DenseMatrix) -> Self {
        let (rows, cols) = (dense.rows(), dense.cols());
        let mut values = Vec::new();
        let mut row_indices = Vec::new();
        let mut col_pointers = Vec::with_capacity(cols + 1);
        col_pointers.push(0);
        for j in 0..cols {
            for i in 0..rows {
                let v = dense.get(i, j);
                if v != 0.0 {
                    values.push(v);
                    row_indices.push(i as u32);
                }
            }
            col_pointers.push(values.len());
        }
        CscMatrix {
            rows,
            cols,
            values,
            row_indices,
            col_pointers,
        }
    }

    /// Materialize as dense.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for j in 0..self.cols {
            let (rows, vals) = self.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                out.set(r as usize, j, v);
            }
        }
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The non-zero values array (column-wise traversal order).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// The row index of each non-zero value.
    pub fn row_indices(&self) -> &[u32] {
        &self.row_indices
    }

    /// The column pointer array (length `cols + 1`).
    pub fn col_pointers(&self) -> &[usize] {
        &self.col_pointers
    }

    /// Column `j` as `(row_indices, values)` slices.
    pub fn col(&self, j: usize) -> (&[u32], &[f32]) {
        assert!(j < self.cols, "column {j} out of range ({})", self.cols);
        let (s, e) = (self.col_pointers[j], self.col_pointers[j + 1]);
        (&self.row_indices[s..e], &self.values[s..e])
    }

    /// Entry `(row, col)`, implicit zeros included. Binary search within
    /// the column — the "higher overhead when locating attribute values"
    /// the paper notes for sparse storage.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        let (rows, vals) = self.col(col);
        match rows.binary_search(&(row as u32)) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Fraction of implicit-zero entries.
    pub fn sparsity(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            return 0.0;
        }
        1.0 - self.nnz() as f64 / total as f64
    }

    /// Approximate resident bytes of the three arrays.
    pub fn memory_bytes(&self) -> usize {
        self.values.len() * 4 + self.row_indices.len() * 4 + self.col_pointers.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The exact example from paper §3.2.
    fn paper_example_dense() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![0.0, 0.0, 3.0, 0.0, 0.0],
            vec![2.0, 0.0, 0.0, 0.0, 7.0],
            vec![0.0, 6.0, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0, 0.0, 8.0],
        ])
    }

    #[test]
    fn matches_papers_worked_example() {
        let csc = CscMatrix::from_dense(&paper_example_dense());
        assert_eq!(csc.values(), &[2.0, 1.0, 6.0, 3.0, 7.0, 8.0]);
        assert_eq!(csc.row_indices(), &[1, 4, 2, 0, 1, 4]);
        assert_eq!(csc.col_pointers(), &[0, 2, 3, 4, 4, 6]);
    }

    #[test]
    fn roundtrip_dense_csc_dense() {
        let dense = paper_example_dense();
        let back = CscMatrix::from_dense(&dense).to_dense();
        assert_eq!(dense, back);
    }

    #[test]
    fn get_returns_implicit_zeros() {
        let csc = CscMatrix::from_dense(&paper_example_dense());
        assert_eq!(csc.get(0, 2), 3.0);
        assert_eq!(csc.get(3, 3), 0.0);
        assert_eq!(csc.get(4, 4), 8.0);
    }

    #[test]
    fn col_access() {
        let csc = CscMatrix::from_dense(&paper_example_dense());
        let (rows, vals) = csc.col(4);
        assert_eq!(rows, &[1, 4]);
        assert_eq!(vals, &[7.0, 8.0]);
        let (rows, vals) = csc.col(3); // empty column
        assert!(rows.is_empty() && vals.is_empty());
    }

    #[test]
    fn sparsity_and_memory() {
        let csc = CscMatrix::from_dense(&paper_example_dense());
        assert!((csc.sparsity() - 19.0 / 25.0).abs() < 1e-9);
        assert_eq!(csc.nnz(), 6);
        assert!(csc.memory_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "col_pointers must end at nnz")]
    fn invalid_pointers_rejected() {
        let _ = CscMatrix::new(2, 2, vec![1.0], vec![0], vec![0, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn duplicate_rows_in_column_rejected() {
        let _ = CscMatrix::new(3, 1, vec![1.0, 2.0], vec![1, 1], vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "row index out of range")]
    fn out_of_range_row_rejected() {
        let _ = CscMatrix::new(2, 1, vec![1.0], vec![5], vec![0, 1]);
    }
}
