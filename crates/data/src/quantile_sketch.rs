//! Streaming ε-approximate quantiles (Greenwald–Khanna).
//!
//! Exact quantile binning ([`crate::binning`]) sorts whole columns —
//! fine when the matrix fits in memory, but the paper's large-scale
//! setting (SF-Crime: 878 k instances) is where real systems switch to
//! bounded-memory sketches (XGBoost's weighted quantile sketch,
//! LightGBM's feature histograms). This module provides the classic GK
//! sketch: `O(ε⁻¹ log εn)` space, rank error ≤ εn, single pass.

/// One GK tuple: `value` with implicit rank band `(g, Δ)`.
#[derive(Debug, Clone, Copy)]
struct Entry {
    value: f32,
    /// Gap between this entry's minimum rank and the previous one's.
    g: u64,
    /// Uncertainty span of this entry's rank.
    delta: u64,
}

/// Greenwald–Khanna ε-approximate quantile sketch over `f32` values.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    eps: f64,
    entries: Vec<Entry>,
    count: u64,
}

impl QuantileSketch {
    /// Create a sketch with rank error at most `eps × n`.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 0.5, "eps must be in (0, 0.5)");
        QuantileSketch {
            eps,
            entries: Vec::new(),
            count: 0,
        }
    }

    /// Number of values inserted.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of retained tuples (the space bound under test).
    pub fn retained(&self) -> usize {
        self.entries.len()
    }

    /// Insert one value.
    pub fn insert(&mut self, v: f32) {
        if !v.is_finite() {
            return;
        }
        self.count += 1;
        // Find insertion position (first entry with value ≥ v).
        let pos = self.entries.partition_point(|e| e.value < v);
        let delta = if pos == 0 || pos == self.entries.len() {
            0 // new min or max is exact
        } else {
            ((2.0 * self.eps * self.count as f64).floor() as u64).saturating_sub(1)
        };
        self.entries.insert(
            pos,
            Entry {
                value: v,
                g: 1,
                delta,
            },
        );
        // Periodic compression keeps space bounded.
        if self
            .count
            .is_multiple_of((1.0 / (2.0 * self.eps)) as u64 + 1)
        {
            self.compress();
        }
    }

    /// Merge adjacent tuples whose combined band still satisfies the
    /// GK invariant `g_i + g_{i+1} + Δ_{i+1} ≤ 2εn`.
    fn compress(&mut self) {
        if self.entries.len() < 3 {
            return;
        }
        let threshold = (2.0 * self.eps * self.count as f64).floor() as u64;
        let mut out: Vec<Entry> = Vec::with_capacity(self.entries.len());
        out.push(self.entries[0]);
        for &e in &self.entries[1..] {
            let can_merge = out.len() > 1 // never merge the minimum away
                && out.last().expect("non-empty").g + e.g + e.delta <= threshold;
            if can_merge {
                // Merge the previous tuple into `e` (absorb its gap).
                let last = out.last_mut().expect("non-empty");
                *last = Entry {
                    value: e.value,
                    g: last.g + e.g,
                    delta: e.delta,
                };
            } else {
                out.push(e);
            }
        }
        self.entries = out;
    }

    /// The ε-approximate `phi`-quantile (`phi ∈ [0, 1]`). Returns
    /// `None` on an empty sketch.
    pub fn query(&self, phi: f64) -> Option<f32> {
        if self.entries.is_empty() {
            return None;
        }
        let phi = phi.clamp(0.0, 1.0);
        let target = (phi * self.count as f64).ceil() as u64;
        let margin = (self.eps * self.count as f64).ceil() as u64;
        let mut rank_min = 0u64;
        for e in &self.entries {
            rank_min += e.g;
            if rank_min + e.delta >= target && rank_min + margin >= target {
                return Some(e.value);
            }
        }
        self.entries.last().map(|e| e.value)
    }

    /// Bin cut points at the `max_bins − 1` uniform quantiles, deduped —
    /// a drop-in replacement for exact quantile cuts on huge columns.
    pub fn cut_points(&self, max_bins: usize) -> Vec<f32> {
        assert!(max_bins >= 2);
        let mut cuts: Vec<f32> = (1..max_bins)
            .filter_map(|q| self.query(q as f64 / max_bins as f64))
            .collect();
        cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        cuts.dedup();
        cuts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// True rank of `v` in `sorted`.
    fn rank(sorted: &[f32], v: f32) -> usize {
        sorted.partition_point(|&x| x < v)
    }

    #[test]
    fn quantiles_within_epsilon_rank_error() {
        let eps = 0.01;
        let n = 20_000usize;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut values: Vec<f32> = (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let mut sk = QuantileSketch::new(eps);
        for &v in &values {
            sk.insert(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for phi in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let est = sk.query(phi).unwrap();
            let r = rank(&values, est) as f64;
            let target = phi * n as f64;
            assert!(
                (r - target).abs() <= 2.0 * eps * n as f64 + 2.0,
                "phi={phi}: rank {r} vs target {target}"
            );
        }
    }

    #[test]
    fn space_is_sublinear() {
        let mut sk = QuantileSketch::new(0.01);
        for i in 0..100_000 {
            sk.insert((i as f32 * 1_000_003.0) % 77_777.0);
        }
        assert_eq!(sk.count(), 100_000);
        assert!(
            sk.retained() < 10_000,
            "retained {} of 100k inserted",
            sk.retained()
        );
    }

    #[test]
    fn extremes_are_tracked() {
        let mut sk = QuantileSketch::new(0.05);
        for i in 0..1000 {
            sk.insert(i as f32);
        }
        assert_eq!(sk.query(0.0), Some(0.0));
        let high = sk.query(1.0).unwrap();
        assert!(high >= 990.0, "max quantile {high}");
    }

    #[test]
    fn sorted_and_shuffled_streams_agree_approximately() {
        let n = 10_000;
        let sorted: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let mut shuffled = sorted.clone();
        use rand::seq::SliceRandom;
        shuffled.shuffle(&mut ChaCha8Rng::seed_from_u64(2));

        let mut a = QuantileSketch::new(0.02);
        let mut b = QuantileSketch::new(0.02);
        sorted.iter().for_each(|&v| a.insert(v));
        shuffled.iter().for_each(|&v| b.insert(v));
        for phi in [0.1, 0.5, 0.9] {
            let (qa, qb) = (a.query(phi).unwrap(), b.query(phi).unwrap());
            assert!(
                (qa - qb).abs() <= 2.0 * 0.02 * n as f32 + 2.0,
                "phi={phi}: {qa} vs {qb}"
            );
        }
    }

    #[test]
    fn cut_points_resemble_exact_quantile_cuts() {
        let n = 50_000;
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let values: Vec<f32> = (0..n).map(|_| rng.gen::<f32>().powi(2) * 50.0).collect();
        let mut sk = QuantileSketch::new(0.005);
        values.iter().for_each(|&v| sk.insert(v));
        let cuts = sk.cut_points(32);
        assert!(cuts.len() >= 16, "only {} cuts", cuts.len());
        assert!(cuts.windows(2).all(|w| w[0] < w[1]), "cuts must increase");

        // Each sketch cut's true rank is near its target quantile.
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (q, &cut) in cuts.iter().enumerate().map(|(i, c)| (i + 1, c)) {
            let r = rank(&sorted, cut) as f64 / n as f64;
            let target = q as f64 / 32.0;
            assert!(
                (r - target).abs() < 0.05,
                "cut {q}: rank fraction {r} vs {target}"
            );
        }
    }

    #[test]
    fn ignores_non_finite_and_handles_empty() {
        let mut sk = QuantileSketch::new(0.1);
        assert_eq!(sk.query(0.5), None);
        sk.insert(f32::NAN);
        sk.insert(f32::INFINITY);
        assert_eq!(sk.count(), 0);
        sk.insert(5.0);
        assert_eq!(sk.query(0.5), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "eps must be in")]
    fn rejects_bad_epsilon() {
        let _ = QuantileSketch::new(0.7);
    }
}
