//! Per-feature quantile binning.
//!
//! Histogram-based GBDT training discretizes each feature into at most
//! `max_bins` bins (the paper uses 256, §4.1, so a bin ID fits one
//! byte). Cut points are chosen at value quantiles; features with few
//! distinct values get exact cuts at midpoints between them.

use crate::dense::DenseMatrix;
use serde::{Deserialize, Serialize};

/// Per-feature bin cut points.
///
/// For feature `f` with cuts `c_0 < c_1 < …`, a value `v` falls in bin
/// `b(v) = #{i : c_i < v}`, so `b(v) ≤ b ⟺ v ≤ c_b` — a split "at bin
/// `b`" is exactly the float threshold `c_b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinCuts {
    cuts: Vec<Vec<f32>>,
    max_bins: usize,
}

impl BinCuts {
    /// Compute cuts for every column of `features`, at most `max_bins`
    /// bins per feature (`max_bins ≤ 256` so bin IDs fit in `u8`).
    pub fn from_matrix(features: &DenseMatrix, max_bins: usize) -> Self {
        assert!(
            (2..=256).contains(&max_bins),
            "max_bins must be in 2..=256, got {max_bins}"
        );
        let cuts = (0..features.cols())
            .map(|j| Self::column_cuts(&features.col(j), max_bins))
            .collect();
        BinCuts { cuts, max_bins }
    }

    /// Streaming variant: cut points from a Greenwald–Khanna sketch
    /// (`O(ε⁻¹ log εn)` memory per feature instead of a full sorted
    /// copy) — the path large-scale systems take for datasets like
    /// SF-Crime's 878 k rows. Within the sketch's rank error the cuts
    /// match [`BinCuts::from_matrix`].
    pub fn from_matrix_sketched(features: &DenseMatrix, max_bins: usize, eps: f64) -> Self {
        assert!(
            (2..=256).contains(&max_bins),
            "max_bins must be in 2..=256, got {max_bins}"
        );
        let cuts = (0..features.cols())
            .map(|j| {
                let mut sketch = crate::quantile_sketch::QuantileSketch::new(eps);
                for i in 0..features.rows() {
                    sketch.insert(features.get(i, j));
                }
                sketch.cut_points(max_bins)
            })
            .collect();
        BinCuts { cuts, max_bins }
    }

    /// Cut points for one column of values.
    fn column_cuts(col: &[f32], max_bins: usize) -> Vec<f32> {
        let mut sorted: Vec<f32> = col.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.dedup();
        if sorted.len() <= 1 {
            return Vec::new(); // constant feature: a single bin
        }
        if sorted.len() <= max_bins {
            // Exact cuts at midpoints between consecutive distinct values.
            return sorted.windows(2).map(|w| (w[0] + w[1]) * 0.5).collect();
        }
        // Quantile cuts over the distinct values.
        let mut cuts = Vec::with_capacity(max_bins - 1);
        for q in 1..max_bins {
            let pos = q * sorted.len() / max_bins;
            let lo = sorted[pos.saturating_sub(1)];
            let hi = sorted[pos.min(sorted.len() - 1)];
            cuts.push((lo + hi) * 0.5);
        }
        cuts.dedup();
        cuts
    }

    /// Number of features covered.
    pub fn num_features(&self) -> usize {
        self.cuts.len()
    }

    /// Upper bound on bins across features (the configured maximum).
    pub fn max_bins(&self) -> usize {
        self.max_bins
    }

    /// Actual number of bins of feature `f` (`cuts + 1`).
    pub fn num_bins(&self, f: usize) -> usize {
        self.cuts[f].len() + 1
    }

    /// Cut points of feature `f`.
    pub fn feature_cuts(&self, f: usize) -> &[f32] {
        &self.cuts[f]
    }

    /// Bin ID of value `v` under feature `f`'s cuts.
    #[inline]
    pub fn bin_value(&self, f: usize, v: f32) -> u8 {
        let cuts = &self.cuts[f];
        cuts.partition_point(|&c| c < v) as u8
    }

    /// Float threshold realized by splitting feature `f` at bin `b`
    /// (instances with `bin ≤ b` go left ⟺ `value ≤ threshold`).
    /// The last bin has no finite upper boundary.
    pub fn threshold(&self, f: usize, b: u8) -> f32 {
        let cuts = &self.cuts[f];
        cuts.get(b as usize).copied().unwrap_or(f32::INFINITY)
    }

    /// The bin that the value `0.0` maps to for feature `f` — the
    /// implicit bin of all CSC-absent entries (sparse histogram path).
    pub fn zero_bin(&self, f: usize) -> u8 {
        self.bin_value(f, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_one_col(vals: &[f32]) -> DenseMatrix {
        DenseMatrix::new(vals.len(), 1, vals.to_vec())
    }

    #[test]
    fn few_distinct_values_get_exact_bins() {
        let m = matrix_one_col(&[1.0, 2.0, 2.0, 5.0, 1.0]);
        let cuts = BinCuts::from_matrix(&m, 256);
        assert_eq!(cuts.num_bins(0), 3); // {1, 2, 5}
        assert_eq!(cuts.bin_value(0, 1.0), 0);
        assert_eq!(cuts.bin_value(0, 2.0), 1);
        assert_eq!(cuts.bin_value(0, 5.0), 2);
        // Midpoint thresholds.
        assert_eq!(cuts.threshold(0, 0), 1.5);
        assert_eq!(cuts.threshold(0, 1), 3.5);
        assert_eq!(cuts.threshold(0, 2), f32::INFINITY);
    }

    #[test]
    fn bin_semantics_match_thresholds() {
        // b(v) ≤ b ⟺ v ≤ threshold(b) for every value and bin.
        let vals: Vec<f32> = (0..1000).map(|i| ((i * 37) % 503) as f32 * 0.7).collect();
        let m = matrix_one_col(&vals);
        let cuts = BinCuts::from_matrix(&m, 64);
        for &v in &vals {
            let bv = cuts.bin_value(0, v);
            for b in 0..cuts.num_bins(0) as u8 {
                assert_eq!(bv <= b, v <= cuts.threshold(0, b), "v={v} b={b} bv={bv}");
            }
        }
    }

    #[test]
    fn quantile_binning_caps_bin_count() {
        let vals: Vec<f32> = (0..10_000).map(|i| i as f32).collect();
        let m = matrix_one_col(&vals);
        let cuts = BinCuts::from_matrix(&m, 256);
        assert!(cuts.num_bins(0) <= 256);
        assert!(cuts.num_bins(0) >= 200, "should use most of the budget");
        // Bins should be roughly balanced.
        let mut counts = vec![0usize; cuts.num_bins(0)];
        for &v in &vals {
            counts[cuts.bin_value(0, v) as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(*max < *min * 3, "unbalanced bins: min={min} max={max}");
    }

    #[test]
    fn constant_feature_is_single_bin() {
        let m = matrix_one_col(&[4.2; 10]);
        let cuts = BinCuts::from_matrix(&m, 256);
        assert_eq!(cuts.num_bins(0), 1);
        assert_eq!(cuts.bin_value(0, 4.2), 0);
        assert_eq!(cuts.bin_value(0, -100.0), 0);
    }

    #[test]
    fn zero_bin_locates_zero() {
        let m = matrix_one_col(&[-1.0, 0.0, 0.0, 2.0, 3.0]);
        let cuts = BinCuts::from_matrix(&m, 256);
        assert_eq!(cuts.zero_bin(0), cuts.bin_value(0, 0.0));
        assert_eq!(cuts.zero_bin(0), 1); // bins: {-1}, {0}, {2}, {3}
    }

    #[test]
    fn nonfinite_values_ignored_for_cuts() {
        let m = matrix_one_col(&[1.0, f32::NAN, 2.0, f32::INFINITY]);
        let cuts = BinCuts::from_matrix(&m, 16);
        assert_eq!(cuts.num_bins(0), 2);
    }

    #[test]
    #[should_panic(expected = "max_bins must be in 2..=256")]
    fn max_bins_range_checked() {
        let _ = BinCuts::from_matrix(&matrix_one_col(&[1.0]), 257);
    }

    #[test]
    fn sketched_cuts_bin_like_exact_cuts() {
        // On a large column, the sketch-derived bins must agree with
        // exact quantile bins to within the sketch's rank error: the
        // same value lands in nearby bins, and bin occupancy stays
        // balanced.
        let n = 20_000;
        let vals: Vec<f32> = (0..n)
            .map(|i| ((i * 2654435761_usize) % 100_000) as f32)
            .collect();
        let m = DenseMatrix::new(n, 1, vals.clone());
        let exact = BinCuts::from_matrix(&m, 64);
        let sketched = BinCuts::from_matrix_sketched(&m, 64, 0.002);
        assert!(
            sketched.num_bins(0) >= 48,
            "sketch produced {} bins",
            sketched.num_bins(0)
        );
        let mut max_diff = 0i64;
        for &v in vals.iter().step_by(97) {
            let a = exact.bin_value(0, v) as i64 * 64 / exact.num_bins(0) as i64;
            let b = sketched.bin_value(0, v) as i64 * 64 / sketched.num_bins(0) as i64;
            max_diff = max_diff.max((a - b).abs());
        }
        assert!(max_diff <= 3, "normalized bin disagreement {max_diff}");
        // Balanced occupancy under sketched cuts.
        let mut counts = vec![0usize; sketched.num_bins(0)];
        for &v in &vals {
            counts[sketched.bin_value(0, v) as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        assert!(
            max < 3 * n / sketched.num_bins(0),
            "skewed sketched bins: max {max}"
        );
    }

    #[test]
    fn multifeature_cuts_independent() {
        let m = DenseMatrix::from_rows(&[vec![1.0, 100.0], vec![2.0, 100.0], vec![3.0, 200.0]]);
        let cuts = BinCuts::from_matrix(&m, 8);
        assert_eq!(cuts.num_features(), 2);
        assert_eq!(cuts.num_bins(0), 3);
        assert_eq!(cuts.num_bins(1), 2);
    }
}
