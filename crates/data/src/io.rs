//! Dataset I/O: LIBSVM-style sparse text (the format the paper's real
//! datasets ship in) and dense CSV.
//!
//! LIBSVM lines are `labels idx:value idx:value …` with 0-based feature
//! indices. The label field depends on the task:
//!
//! * multiclass — one class index (`3`);
//! * multilabel — comma-separated active labels (`2,17,801`);
//! * multiregression — comma-separated float targets (`0.3,-1.2`).
//!
//! Absent features are implicit zeros, which round-trips exactly
//! through the CSC machinery of §3.2.

use crate::dense::DenseMatrix;
use crate::{Dataset, Task};
use std::io::{BufRead, Write};

/// Write a dataset in LIBSVM format (zeros omitted).
pub fn write_libsvm<W: Write>(mut w: W, ds: &Dataset) -> std::io::Result<()> {
    for i in 0..ds.n() {
        let label = match ds.task() {
            Task::MultiClass => ds
                .target_row(i)
                .iter()
                .position(|&v| v == 1.0)
                .unwrap_or(0)
                .to_string(),
            Task::MultiLabel => {
                let active: Vec<String> = ds
                    .target_row(i)
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0.0)
                    .map(|(k, _)| k.to_string())
                    .collect();
                active.join(",")
            }
            Task::MultiRegression => {
                let vals: Vec<String> = ds.target_row(i).iter().map(|v| format!("{v}")).collect();
                vals.join(",")
            }
        };
        write!(w, "{label}")?;
        for j in 0..ds.m() {
            let v = ds.features().get(i, j);
            if v != 0.0 {
                write!(w, " {j}:{v}")?;
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Read a LIBSVM file into a dataset.
///
/// `num_features`/`num_outputs` fix the shapes (indices beyond
/// `num_features` are an error; for multiclass/multilabel, labels must
/// be `< num_outputs`).
pub fn read_libsvm<R: BufRead>(
    r: R,
    num_features: usize,
    num_outputs: usize,
    task: Task,
) -> Result<Dataset, String> {
    let mut rows: Vec<Vec<f32>> = Vec::new();
    let mut targets: Vec<f32> = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let label_field = parts
            .next()
            .ok_or_else(|| format!("line {}: missing label", lineno + 1))?;

        let mut target_row = vec![0.0f32; num_outputs];
        match task {
            Task::MultiClass => {
                let c: usize = label_field
                    .parse()
                    .map_err(|e| format!("line {}: bad class label: {e}", lineno + 1))?;
                if c >= num_outputs {
                    return Err(format!("line {}: class {c} ≥ {num_outputs}", lineno + 1));
                }
                target_row[c] = 1.0;
            }
            Task::MultiLabel => {
                for tok in label_field.split(',').filter(|t| !t.is_empty()) {
                    let k: usize = tok
                        .parse()
                        .map_err(|e| format!("line {}: bad label: {e}", lineno + 1))?;
                    if k >= num_outputs {
                        return Err(format!("line {}: label {k} ≥ {num_outputs}", lineno + 1));
                    }
                    target_row[k] = 1.0;
                }
            }
            Task::MultiRegression => {
                let vals: Vec<&str> = label_field.split(',').collect();
                if vals.len() != num_outputs {
                    return Err(format!(
                        "line {}: {} targets, expected {num_outputs}",
                        lineno + 1,
                        vals.len()
                    ));
                }
                for (k, tok) in vals.iter().enumerate() {
                    target_row[k] = tok
                        .parse()
                        .map_err(|e| format!("line {}: bad target: {e}", lineno + 1))?;
                }
            }
        }
        targets.extend(target_row);

        let mut row = vec![0.0f32; num_features];
        for pair in parts {
            let (idx, val) = pair
                .split_once(':')
                .ok_or_else(|| format!("line {}: malformed pair {pair:?}", lineno + 1))?;
            let j: usize = idx
                .parse()
                .map_err(|e| format!("line {}: bad index: {e}", lineno + 1))?;
            if j >= num_features {
                return Err(format!("line {}: index {j} ≥ {num_features}", lineno + 1));
            }
            row[j] = val
                .parse()
                .map_err(|e| format!("line {}: bad value: {e}", lineno + 1))?;
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err("no instances".into());
    }
    Ok(Dataset::new(
        DenseMatrix::from_rows(&rows),
        targets,
        num_outputs,
        task,
    ))
}

/// Write a dense CSV: header `f0,…,f{m-1},y0,…,y{d-1}`, one instance
/// per row.
pub fn write_csv<W: Write>(mut w: W, ds: &Dataset) -> std::io::Result<()> {
    let header: Vec<String> = (0..ds.m())
        .map(|j| format!("f{j}"))
        .chain((0..ds.d()).map(|k| format!("y{k}")))
        .collect();
    writeln!(w, "{}", header.join(","))?;
    for i in 0..ds.n() {
        let cells: Vec<String> = ds
            .features()
            .row(i)
            .iter()
            .chain(ds.target_row(i))
            .map(|v| format!("{v}"))
            .collect();
        writeln!(w, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Read a dense CSV produced by [`write_csv`] (or any CSV whose last
/// `num_outputs` columns are targets).
pub fn read_csv<R: BufRead>(r: R, num_outputs: usize, task: Task) -> Result<Dataset, String> {
    let mut lines = r.lines();
    let header = lines
        .next()
        .ok_or("empty file")?
        .map_err(|e| e.to_string())?;
    let cols = header.split(',').count();
    if cols <= num_outputs {
        return Err(format!("{cols} columns cannot hold {num_outputs} targets"));
    }
    let m = cols - num_outputs;
    let mut rows = Vec::new();
    let mut targets = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", lineno + 2))?;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != cols {
            return Err(format!(
                "line {}: {} cells, expected {cols}",
                lineno + 2,
                cells.len()
            ));
        }
        let parse = |s: &str| -> Result<f32, String> {
            s.trim()
                .parse()
                .map_err(|e| format!("line {}: bad number {s:?}: {e}", lineno + 2))
        };
        let mut row = Vec::with_capacity(m);
        for c in &cells[..m] {
            row.push(parse(c)?);
        }
        for c in &cells[m..] {
            targets.push(parse(c)?);
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err("no instances".into());
    }
    Ok(Dataset::new(
        DenseMatrix::from_rows(&rows),
        targets,
        num_outputs,
        task,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{
        make_classification, make_multilabel, make_regression, ClassificationSpec, MultilabelSpec,
        RegressionSpec,
    };
    use std::io::Cursor;

    fn roundtrip_libsvm(ds: &Dataset) -> Dataset {
        let mut buf = Vec::new();
        write_libsvm(&mut buf, ds).unwrap();
        read_libsvm(Cursor::new(buf), ds.m(), ds.d(), ds.task()).unwrap()
    }

    #[test]
    fn libsvm_roundtrip_multiclass() {
        let ds = make_classification(&ClassificationSpec {
            instances: 50,
            features: 8,
            classes: 3,
            informative: 4,
            sparsity: 0.5,
            seed: 1,
            ..Default::default()
        });
        let back = roundtrip_libsvm(&ds);
        assert_eq!(back.targets(), ds.targets());
        for i in 0..ds.n() {
            for j in 0..ds.m() {
                let (a, b) = (ds.features().get(i, j), back.features().get(i, j));
                assert!((a - b).abs() < 1e-5, "({i},{j}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn libsvm_roundtrip_multilabel() {
        let ds = make_multilabel(&MultilabelSpec {
            instances: 40,
            features: 20,
            labels: 6,
            seed: 2,
            ..Default::default()
        });
        let back = roundtrip_libsvm(&ds);
        assert_eq!(back.targets(), ds.targets());
    }

    #[test]
    fn libsvm_roundtrip_multiregression() {
        let ds = make_regression(&RegressionSpec {
            instances: 30,
            features: 6,
            outputs: 3,
            informative: 4,
            seed: 3,
            ..Default::default()
        });
        let back = roundtrip_libsvm(&ds);
        for (a, b) in ds.targets().iter().zip(back.targets()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn libsvm_parses_handwritten_sample() {
        let text = "1 0:2.5 3:1\n0 1:-1\n# comment\n\n2 0:0.5 2:7\n";
        let ds = read_libsvm(Cursor::new(text), 4, 3, Task::MultiClass).unwrap();
        assert_eq!(ds.n(), 3);
        assert_eq!(ds.labels(), vec![1, 0, 2]);
        assert_eq!(ds.features().get(0, 0), 2.5);
        assert_eq!(ds.features().get(0, 1), 0.0);
        assert_eq!(ds.features().get(2, 2), 7.0);
    }

    #[test]
    fn libsvm_rejects_bad_input() {
        assert!(read_libsvm(Cursor::new("9 0:1"), 4, 3, Task::MultiClass)
            .unwrap_err()
            .contains("class 9"));
        assert!(read_libsvm(Cursor::new("1 7:1"), 4, 3, Task::MultiClass)
            .unwrap_err()
            .contains("index 7"));
        assert!(read_libsvm(Cursor::new("1 zz"), 4, 3, Task::MultiClass)
            .unwrap_err()
            .contains("malformed"));
        assert!(read_libsvm(Cursor::new(""), 4, 3, Task::MultiClass).is_err());
    }

    #[test]
    fn csv_roundtrip() {
        let ds = make_regression(&RegressionSpec {
            instances: 25,
            features: 5,
            outputs: 2,
            informative: 3,
            seed: 4,
            ..Default::default()
        });
        let mut buf = Vec::new();
        write_csv(&mut buf, &ds).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("f0,f1,f2,f3,f4,y0,y1\n"));
        let back = read_csv(Cursor::new(buf), 2, Task::MultiRegression).unwrap();
        assert_eq!(back.n(), 25);
        assert_eq!(back.m(), 5);
        for (a, b) in ds.targets().iter().zip(back.targets()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn csv_rejects_ragged_rows() {
        let text = "f0,f1,y0\n1,2,3\n1,2\n";
        let err = read_csv(Cursor::new(text), 1, Task::MultiRegression).unwrap_err();
        assert!(err.contains("2 cells"));
    }

    #[test]
    fn file_roundtrip_through_tempdir() {
        let ds = make_classification(&ClassificationSpec {
            instances: 20,
            features: 6,
            classes: 2,
            informative: 3,
            seed: 5,
            ..Default::default()
        });
        let path = std::env::temp_dir().join("gbdt_mo_io_test.libsvm");
        write_libsvm(std::fs::File::create(&path).unwrap(), &ds).unwrap();
        let back = read_libsvm(
            std::io::BufReader::new(std::fs::File::open(&path).unwrap()),
            ds.m(),
            ds.d(),
            Task::MultiClass,
        )
        .unwrap();
        assert_eq!(back.labels(), ds.labels());
        let _ = std::fs::remove_file(path);
    }
}
