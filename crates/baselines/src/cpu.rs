//! CPU GBDT-MO baselines — the paper's `mo-full` ("mo-fu", dense
//! storage) and `mo-sparse` ("mo-sp", CSC storage) comparators
//! (Zhang & Jung 2020, as used in the paper's Table 4).
//!
//! Unlike the GPU trainers, these run the *same algorithm* natively on
//! host cores (rayon across features, like the original's OpenMP) and
//! report **measured wall-clock**, not simulated time. The dense
//! variant streams the column-major bin matrix; the sparse variant
//! walks CSC non-zeros and fills the implicit-zero bin in closed form —
//! cheaper on very sparse data, slower on dense data (which is why the
//! paper's Table 4 shows `mo-sp` behind `mo-fu` on these datasets).

use gbdt_core::config::TrainConfig;
use gbdt_core::grad::Gradients;
use gbdt_core::grow::partition_stable;
use gbdt_core::hist::{accumulate_dense, accumulate_sparse, HistContext, NodeHistogram};
use gbdt_core::loss::loss_for_task;
use gbdt_core::model::Model;
use gbdt_core::split::{find_best_split_batched, leaf_values, LevelSplitCharges, SplitParams};
use gbdt_core::trainer::base_scores;
use gbdt_core::tree::Tree;
use gbdt_data::{BinnedDataset, Dataset};
use gpusim::Device;
use rayon::prelude::*;
use std::time::Instant;

/// Feature-storage variant of the CPU trainer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuStorage {
    /// Dense column-major bin matrix (`mo-full` / "mo-fu").
    Dense,
    /// CSC non-zeros + implicit zero bin (`mo-sparse` / "mo-sp").
    Sparse,
}

/// Report of a CPU training run: the model plus *measured* host time.
#[derive(Debug)]
pub struct CpuReport {
    /// The trained model (same [`Model`] type as the GPU trainer — the
    /// algorithms are identical, only the execution substrate differs).
    pub model: Model,
    /// Measured wall-clock seconds of the fit.
    pub wall_seconds: f64,
}

/// Multicore CPU GBDT-MO trainer.
pub struct CpuMoTrainer {
    config: TrainConfig,
    storage: CpuStorage,
}

impl CpuMoTrainer {
    /// Create a CPU trainer over the chosen storage.
    pub fn new(config: TrainConfig, storage: CpuStorage) -> Self {
        config.validate().expect("invalid training configuration");
        CpuMoTrainer { config, storage }
    }

    /// Train and return just the model.
    pub fn fit(&self, ds: &Dataset) -> Model {
        self.fit_report(ds).model
    }

    /// Train, measuring host wall-clock.
    pub fn fit_report(&self, ds: &Dataset) -> CpuReport {
        let start = Instant::now();
        let n = ds.n();
        let d = ds.d();
        let binned = BinnedDataset::build(ds.features(), self.config.max_bins);
        let loss = loss_for_task(ds.task());
        let params = SplitParams {
            lambda: self.config.lambda,
            min_gain: self.config.min_gain,
            min_instances: self.config.min_instances,
            segments_c: self.config.segments_per_block_c,
        };
        let features: Vec<u32> = (0..ds.m() as u32).collect();

        let base = base_scores(ds);
        let mut scores = vec![0.0f32; n * d];
        for row in scores.chunks_mut(d) {
            row.copy_from_slice(&base);
        }

        // A throwaway device: the shared histogram helpers take a
        // HistContext; all charges land on this ledger and are ignored.
        // The *measured* wall-clock is what this trainer reports.
        let scratch_device = Device::rtx4090();

        let mut trees = Vec::with_capacity(self.config.num_trees);
        let mut hist = NodeHistogram::new(features.len(), d, self.config.max_bins);

        for _t in 0..self.config.num_trees {
            // Gradients, multicore.
            let mut g = vec![0.0f32; n * d];
            let mut h = vec![0.0f32; n * d];
            g.par_chunks_mut(d)
                .zip(h.par_chunks_mut(d))
                .enumerate()
                .for_each(|(i, (gr, hr))| {
                    loss.grad_hess_row(
                        &scores[i * d..(i + 1) * d],
                        &ds.targets()[i * d..(i + 1) * d],
                        gr,
                        hr,
                    );
                });
            let grads = Gradients { g, h, n, d };
            let ctx = HistContext {
                device: &scratch_device,
                data: &binned,
                grads: &grads,
                features: &features,
                bins: self.config.max_bins,
                opts: self.config.hist,
            };

            // Level-wise growth (identical logic to the GPU grower).
            let mut tree = Tree::new(d);
            let mut leaf_assignments: Vec<(Vec<u32>, Vec<f32>)> = Vec::new();
            let root_idx: Vec<u32> = (0..n as u32).collect();
            let (rg, rh) = grads.sums(&root_idx);
            let mut frontier = vec![(0usize, root_idx, rg, rh)];
            let mut sink = LevelSplitCharges::new();

            for _depth in 0..self.config.max_depth {
                let mut next = Vec::new();
                for (tree_node, instances, g, h) in frontier {
                    if instances.len() < 2 * self.config.min_instances {
                        let v = leaf_values(&g, &h, self.config.lambda, self.config.learning_rate);
                        tree.set_leaf(tree_node, v.clone());
                        leaf_assignments.push((instances, v));
                        continue;
                    }
                    hist.reset();
                    match self.storage {
                        CpuStorage::Dense => accumulate_dense(&ctx, &instances, &mut hist),
                        CpuStorage::Sparse => {
                            accumulate_sparse(&ctx, &instances, &g, &h, &mut hist)
                        }
                    }
                    let split = find_best_split_batched(
                        &mut sink,
                        &hist,
                        &features,
                        &g,
                        &h,
                        instances.len() as u32,
                        &params,
                    );
                    let Some(split) = split else {
                        let v = leaf_values(&g, &h, self.config.lambda, self.config.learning_rate);
                        tree.set_leaf(tree_node, v.clone());
                        leaf_assignments.push((instances, v));
                        continue;
                    };
                    let col = binned.bins.col(split.feature as usize);
                    let flags: Vec<bool> = instances
                        .iter()
                        .map(|&i| col[i as usize] <= split.bin)
                        .collect();
                    let (left_idx, right_idx) = partition_stable(&instances, &flags);
                    let threshold = binned.cuts.threshold(split.feature as usize, split.bin);
                    let (l, r) = tree.split_node(tree_node, split.feature, split.bin, threshold);
                    let right_g: Vec<f64> =
                        g.iter().zip(&split.left_g).map(|(a, b)| a - b).collect();
                    let right_h: Vec<f64> =
                        h.iter().zip(&split.left_h).map(|(a, b)| a - b).collect();
                    next.push((l, left_idx, split.left_g, split.left_h));
                    next.push((r, right_idx, right_g, right_h));
                }
                frontier = next;
                if frontier.is_empty() {
                    break;
                }
            }
            for (tree_node, instances, g, h) in frontier {
                let v = leaf_values(&g, &h, self.config.lambda, self.config.learning_rate);
                tree.set_leaf(tree_node, v.clone());
                leaf_assignments.push((instances, v));
            }

            for (instances, value) in &leaf_assignments {
                for &i in instances {
                    let bss = i as usize * d;
                    for k in 0..d {
                        scores[bss + k] += value[k];
                    }
                }
            }
            trees.push(tree);
        }

        CpuReport {
            model: Model {
                trees,
                base,
                d,
                task: ds.task(),
                config: self.config.clone(),
            },
            wall_seconds: start.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt_core::metrics::accuracy;
    use gbdt_core::trainer::GpuTrainer;
    use gbdt_data::synth::{make_classification, ClassificationSpec};

    fn dataset(sparsity: f64, seed: u64) -> Dataset {
        make_classification(&ClassificationSpec {
            instances: 400,
            features: 12,
            classes: 3,
            informative: 8,
            class_sep: 2.0,
            sparsity,
            seed,
            ..Default::default()
        })
    }

    fn quick_config() -> TrainConfig {
        TrainConfig {
            num_trees: 5,
            max_depth: 4,
            max_bins: 32,
            min_instances: 5,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn dense_and_sparse_produce_equivalent_models() {
        let ds = dataset(0.5, 1);
        let dense = CpuMoTrainer::new(quick_config(), CpuStorage::Dense).fit(&ds);
        let sparse = CpuMoTrainer::new(quick_config(), CpuStorage::Sparse).fit(&ds);
        let pd = dense.predict(ds.features());
        let ps = sparse.predict(ds.features());
        for (a, b) in pd.iter().zip(&ps) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn cpu_model_matches_gpu_model_exactly_in_structure() {
        // Same algorithm, same data, same config → same splits. The GPU
        // path is the same functional code charged to a device.
        let ds = dataset(0.3, 2);
        let cpu = CpuMoTrainer::new(quick_config(), CpuStorage::Dense).fit(&ds);
        let gpu = GpuTrainer::new(Device::rtx4090(), quick_config()).fit(&ds);
        assert_eq!(cpu.predict(ds.features()), gpu.predict(ds.features()));
    }

    #[test]
    fn cpu_learns() {
        let ds = dataset(0.2, 3);
        let (train, test) = ds.split(0.3, 4);
        let report = CpuMoTrainer::new(quick_config(), CpuStorage::Dense).fit_report(&train);
        let acc = accuracy(&report.model.predict(test.features()), &test.labels());
        assert!(acc > 0.7, "accuracy {acc}");
        assert!(report.wall_seconds > 0.0);
    }

    #[test]
    fn wall_clock_is_measured() {
        let ds = dataset(0.0, 5);
        let r = CpuMoTrainer::new(quick_config(), CpuStorage::Sparse).fit_report(&ds);
        assert!(r.wall_seconds > 0.0 && r.wall_seconds < 60.0);
    }
}
