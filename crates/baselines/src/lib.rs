//! # gbdt-baselines — the systems the paper compares against
//!
//! The paper's evaluation (§4.1) pits the proposed GBDT-MO system
//! against two families of baselines; this crate implements the
//! algorithmic core of each so every table/figure has a real comparator:
//!
//! * **GPU single-output systems** ([`gbdt_so`]) — XGBoost-, LightGBM-
//!   and CatBoost-style trainers that fit `d` single-output ensembles
//!   (one per class/label/target), distinguished by their growth
//!   policies ([`growers`]): level-wise, leaf-wise, and oblivious
//!   (symmetric) trees. All run on the same simulated device, so the
//!   timing comparison is apples-to-apples.
//! * **CPU multi-output GBDT** ([`cpu`]) — the `mo-full` (dense) and
//!   `mo-sparse` (CSC) trainers of Zhang & Jung's GBDT-MO, measured in
//!   real host wall-clock.
//! * **SketchBoost** ([`sketchboost`]) — Iosipoi & Vakhrushev's three
//!   gradient sketches (Top-Outputs, Random Sampling, Random
//!   Projections) that shrink the split-search dimension while keeping
//!   full-dimensional leaf values.
//! * **Exact greedy** ([`exact`]) — a non-histogram reference splitter
//!   used to validate the histogram pipeline's split decisions.
//! * **Multi-output random forest** ([`random_forest`]) — the bagging
//!   comparator class from the paper's related work (§5).

#![warn(missing_docs)]

pub mod cpu;
pub mod exact;
pub mod gbdt_so;
pub mod growers;
pub mod random_forest;
pub mod sketchboost;

pub use cpu::{CpuMoTrainer, CpuStorage};
pub use gbdt_so::{GbdtSoTrainer, GrowthPolicy, SoModel};
pub use random_forest::{ForestConfig, ForestModel, RandomForestTrainer};
pub use sketchboost::{SketchBoostTrainer, SketchStrategy};
