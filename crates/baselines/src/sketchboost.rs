//! SketchBoost (Iosipoi & Vakhrushev, 2022) — the paper's strongest
//! multi-output GPU baseline ("sk-boost" in Tables 2–3).
//!
//! SketchBoost accelerates multi-output split search by reducing the
//! gradient matrix from `d` columns to `k ≪ d` before histogram
//! building, with one of three sketches:
//!
//! * **Top-Outputs** — keep the `k` columns with the largest total
//!   absolute gradient;
//! * **Random Sampling** — keep `k` uniformly random columns
//!   (re-drawn per tree);
//! * **Random Projections** — multiply by a random Gaussian `d × k`
//!   matrix (re-drawn per tree).
//!
//! Tree *structure* is grown on the sketched gradients; leaf *values*
//! are refit on the full `d`-dimensional gradients, so predictions stay
//! full-dimensional. This is why sk-boost's cost is nearly flat in the
//! class count (paper Fig. 6b) while exact GBDT-MO grows with `d`.

use gbdt_core::config::TrainConfig;
use gbdt_core::grad::{compute_gradients, update_scores_from_leaves, Gradients};
use gbdt_core::grow::grow_tree;
use gbdt_core::loss::loss_for_task;
use gbdt_core::model::Model;
use gbdt_core::split::leaf_values;
use gbdt_core::trainer::{base_scores, TrainReport};
use gbdt_data::{BinnedDataset, Dataset};
use gpusim::cost::KernelCost;
use gpusim::{Device, Phase};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Gradient-sketching strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SketchStrategy {
    /// Keep the `k` highest-energy output columns.
    TopOutputs,
    /// Keep `k` uniformly random output columns.
    RandomSampling,
    /// Project onto `k` random Gaussian directions.
    RandomProjection,
}

/// Standard-normal sample via Box–Muller.
fn normal(rng: &mut ChaCha8Rng) -> f32 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Sketch full gradients down to `k` columns; charges the reduction
/// kernel to `device`.
pub fn sketch_gradients(
    device: &Device,
    grads: &Gradients,
    k: usize,
    strategy: SketchStrategy,
    seed: u64,
) -> Gradients {
    let (n, d) = (grads.n, grads.d);
    let k = k.min(d).max(1);
    if k == d && strategy != SketchStrategy::RandomProjection {
        return grads.clone();
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    let (g, h) = match strategy {
        SketchStrategy::TopOutputs => {
            // Column energies: Σ_i |g_ik|.
            let mut energy = vec![0.0f64; d];
            for i in 0..n {
                for (e, &gv) in energy.iter_mut().zip(grads.g_row(i)) {
                    *e += gv.abs() as f64;
                }
            }
            let mut order: Vec<usize> = (0..d).collect();
            order.sort_by(|&a, &b| energy[b].partial_cmp(&energy[a]).unwrap().then(a.cmp(&b)));
            let mut cols = order[..k].to_vec();
            cols.sort_unstable();
            select_columns(grads, &cols)
        }
        SketchStrategy::RandomSampling => {
            let mut all: Vec<usize> = (0..d).collect();
            all.shuffle(&mut rng);
            let mut cols = all[..k].to_vec();
            cols.sort_unstable();
            select_columns(grads, &cols)
        }
        SketchStrategy::RandomProjection => {
            let scale = 1.0 / (k as f32).sqrt();
            let r: Vec<f32> = (0..d * k).map(|_| normal(&mut rng) * scale).collect();
            let mut g = vec![0.0f32; n * k];
            // Hessians are not linear in the projection; SketchBoost
            // uses the per-instance mean Hessian for every sketched
            // column (exact for MSE where h is constant).
            let mut h = vec![0.0f32; n * k];
            for i in 0..n {
                let grow = grads.g_row(i);
                let hrow = grads.h_row(i);
                let hmean: f32 = hrow.iter().sum::<f32>() / d as f32;
                for j in 0..k {
                    let mut acc = 0.0f32;
                    for (kk, &gv) in grow.iter().enumerate() {
                        acc += gv * r[kk * k + j];
                    }
                    g[i * k + j] = acc;
                    h[i * k + j] = hmean;
                }
            }
            (g, h)
        }
    };

    device.charge_kernel(
        "gradient_sketch",
        Phase::Gradient,
        &KernelCost::streaming(
            (n * d
                * if strategy == SketchStrategy::RandomProjection {
                    k
                } else {
                    1
                }) as f64,
            (n * (d + k) * 8) as f64,
        ),
    );
    Gradients { g, h, n, d: k }
}

fn select_columns(grads: &Gradients, cols: &[usize]) -> (Vec<f32>, Vec<f32>) {
    let (n, k) = (grads.n, cols.len());
    let mut g = vec![0.0f32; n * k];
    let mut h = vec![0.0f32; n * k];
    for i in 0..n {
        let grow = grads.g_row(i);
        let hrow = grads.h_row(i);
        for (j, &c) in cols.iter().enumerate() {
            g[i * k + j] = grow[c];
            h[i * k + j] = hrow[c];
        }
    }
    (g, h)
}

/// SketchBoost-style trainer on the simulated device.
pub struct SketchBoostTrainer {
    device: Arc<Device>,
    config: TrainConfig,
    strategy: SketchStrategy,
    /// Sketch dimension `k` (SketchBoost's paper default is 5).
    pub sketch_dim: usize,
}

impl SketchBoostTrainer {
    /// Default sketch dimension from the SketchBoost paper.
    pub const DEFAULT_SKETCH_DIM: usize = 5;

    /// Create a trainer with sketch dimension `k`.
    pub fn new(
        device: Arc<Device>,
        config: TrainConfig,
        strategy: SketchStrategy,
        sketch_dim: usize,
    ) -> Self {
        config.validate().expect("invalid training configuration");
        assert!(sketch_dim >= 1, "sketch dimension must be ≥ 1");
        SketchBoostTrainer {
            device,
            config,
            strategy,
            sketch_dim,
        }
    }

    /// The device charged by this trainer.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// Train and return just the model.
    pub fn fit(&self, ds: &Dataset) -> Model {
        self.fit_report(ds).model
    }

    /// Train with the timing report.
    pub fn fit_report(&self, ds: &Dataset) -> TrainReport {
        let start = self.device.summary();
        let host_start = Instant::now();
        let n = ds.n();
        let d = ds.d();
        let device = &*self.device;

        let raw_bytes = (n * ds.m() * 4) as f64;
        device.charge_ns(
            "htod_features",
            Phase::Transfer,
            device.model().host_copy_ns(raw_bytes),
        );
        let binned = BinnedDataset::build(ds.features(), self.config.max_bins);
        device.charge_kernel(
            "quantile_binning",
            Phase::Binning,
            &KernelCost::streaming((n * ds.m()) as f64 * 16.0, raw_bytes * 2.5),
        );

        let base = base_scores(ds);
        let mut scores = vec![0.0f32; n * d];
        for row in scores.chunks_mut(d) {
            row.copy_from_slice(&base);
        }
        let loss = loss_for_task(ds.task());
        let features: Vec<u32> = (0..ds.m() as u32).collect();
        let mut trees = Vec::with_capacity(self.config.num_trees);
        let mut hist_methods = BTreeMap::new();

        for t in 0..self.config.num_trees {
            let grads = compute_gradients(device, loss.as_ref(), &scores, ds.targets(), n, d);
            let sketched = sketch_gradients(
                device,
                &grads,
                self.sketch_dim,
                self.strategy,
                self.config.seed.wrapping_add(t as u64),
            );
            // Structure from the sketch…
            let mut grown = grow_tree(device, &binned, &sketched, &self.config, &features);
            for (m, c) in std::mem::take(&mut grown.methods_used) {
                *hist_methods.entry(m).or_insert(0) += c;
            }
            // …values from the full gradients (one pass per leaf).
            grown.tree = retarget_leaves(&grown, &grads, &self.config);
            device.charge_kernel(
                "leaf_refit_full_d",
                Phase::LeafValue,
                &KernelCost::streaming((n * d * 2) as f64, (n * d * 8) as f64),
            );

            // Update leaf assignments with the refit values before the
            // incremental score update.
            let refit: Vec<(Vec<u32>, Vec<f32>)> = grown
                .leaf_assignments
                .iter()
                .zip(&grown.leaf_nodes)
                .map(|((instances, _), &node)| {
                    (instances.clone(), grown.tree.leaf_value(node).to_vec())
                })
                .collect();
            update_scores_from_leaves(device, &mut scores, d, &refit);
            trees.push(grown.tree);
        }

        let model = Model {
            trees,
            base,
            d,
            task: ds.task(),
            config: self.config.clone(),
        };
        let sim = self.device.summary().since(&start);
        TrainReport {
            sim_seconds: sim.total_ns * 1e-9,
            host_seconds: host_start.elapsed().as_secs_f64(),
            sim,
            model,
            hist_methods,
        }
    }
}

/// Rebuild a sketched tree with full-dimensional leaves whose values
/// are the optimal `−G/(H+λ)` of the complete gradients. Node indices
/// are preserved, so `grown.leaf_nodes` addresses the new tree too.
fn retarget_leaves(
    grown: &gbdt_core::grow::GrowResult,
    full_grads: &Gradients,
    config: &TrainConfig,
) -> gbdt_core::tree::Tree {
    let mut values: std::collections::HashMap<usize, Vec<f32>> = grown
        .leaf_assignments
        .iter()
        .zip(&grown.leaf_nodes)
        .map(|((instances, _), &node)| {
            let (g, h) = full_grads.sums(instances);
            (
                node,
                leaf_values(&g, &h, config.lambda, config.learning_rate),
            )
        })
        .collect();
    grown.tree.with_leaf_values(full_grads.d, |node| {
        values
            .remove(&node)
            .unwrap_or_else(|| vec![0.0; full_grads.d])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt_core::metrics::accuracy;
    use gbdt_core::trainer::GpuTrainer;
    use gbdt_data::synth::{make_classification, ClassificationSpec};

    fn dataset(classes: usize, seed: u64) -> Dataset {
        make_classification(&ClassificationSpec {
            instances: 500,
            features: 12,
            classes,
            informative: 8,
            class_sep: 2.0,
            flip_y: 0.0,
            seed,
            ..Default::default()
        })
    }

    fn quick_config() -> TrainConfig {
        TrainConfig {
            num_trees: 6,
            max_depth: 4,
            max_bins: 32,
            min_instances: 5,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn sketch_shapes_are_correct() {
        let device = Device::rtx4090();
        let grads = Gradients {
            g: (0..60).map(|i| i as f32).collect(),
            h: vec![1.0; 60],
            n: 10,
            d: 6,
        };
        for strategy in [
            SketchStrategy::TopOutputs,
            SketchStrategy::RandomSampling,
            SketchStrategy::RandomProjection,
        ] {
            let s = sketch_gradients(&device, &grads, 3, strategy, 1);
            assert_eq!(s.d, 3);
            assert_eq!(s.g.len(), 30);
            assert_eq!(s.h.len(), 30);
        }
    }

    #[test]
    fn top_outputs_keeps_highest_energy_columns() {
        let device = Device::rtx4090();
        // Column 2 has huge gradients, column 0 zero.
        let n = 20;
        let d = 3;
        let mut g = vec![0.0f32; n * d];
        for i in 0..n {
            g[i * d + 1] = 1.0;
            g[i * d + 2] = 100.0;
        }
        let grads = Gradients {
            g,
            h: vec![1.0; n * d],
            n,
            d,
        };
        let s = sketch_gradients(&device, &grads, 2, SketchStrategy::TopOutputs, 0);
        // Kept columns (sorted): 1 and 2 → first kept column is 1.
        assert_eq!(s.g[0], 0.0 + 1.0 * 0.0 + s.g[0]); // placeholder no-op
        assert!((s.g[0] - 1.0).abs() < 1e-6 || (s.g[1] - 1.0).abs() < 1e-6);
        assert!(s.g.iter().any(|&v| (v - 100.0).abs() < 1e-6));
    }

    #[test]
    fn full_width_sketch_is_identity_for_selection_strategies() {
        let device = Device::rtx4090();
        let grads = Gradients {
            g: (0..40).map(|i| i as f32 * 0.5).collect(),
            h: vec![2.0; 40],
            n: 10,
            d: 4,
        };
        let s = sketch_gradients(&device, &grads, 4, SketchStrategy::TopOutputs, 9);
        assert_eq!(s.g, grads.g);
        assert_eq!(s.h, grads.h);
    }

    #[test]
    fn sketchboost_learns_with_every_strategy() {
        let ds = dataset(5, 1);
        let (train, test) = ds.split(0.3, 3);
        for strategy in [
            SketchStrategy::TopOutputs,
            SketchStrategy::RandomSampling,
            SketchStrategy::RandomProjection,
        ] {
            let model =
                SketchBoostTrainer::new(Device::rtx4090(), quick_config(), strategy, 3).fit(&train);
            let acc = accuracy(&model.predict(test.features()), &test.labels());
            assert!(acc > 0.55, "{strategy:?} accuracy only {acc}");
            // Leaves are full-dimensional despite the sketch.
            assert_eq!(model.d, 5);
        }
    }

    #[test]
    fn sketch_cost_is_flat_in_class_count() {
        // Fig. 6b: sk-boost's histogram dimension is k, not d, so time
        // barely grows with classes.
        let few = dataset(4, 2);
        let many = dataset(16, 2);
        let t_few = SketchBoostTrainer::new(
            Device::rtx4090(),
            quick_config(),
            SketchStrategy::TopOutputs,
            5,
        )
        .fit_report(&few);
        let t_many = SketchBoostTrainer::new(
            Device::rtx4090(),
            quick_config(),
            SketchStrategy::TopOutputs,
            5,
        )
        .fit_report(&many);
        let ratio = t_many.sim_seconds / t_few.sim_seconds;
        assert!(
            ratio < 2.5,
            "sk-boost time should be nearly flat in d: ratio {ratio}"
        );
    }

    #[test]
    fn exact_mo_beats_or_matches_sketch_on_accuracy() {
        let ds = dataset(6, 7);
        let (train, test) = ds.split(0.3, 5);
        let exact = GpuTrainer::new(Device::rtx4090(), quick_config()).fit(&train);
        let sketched = SketchBoostTrainer::new(
            Device::rtx4090(),
            quick_config(),
            SketchStrategy::RandomSampling,
            2,
        )
        .fit(&train);
        let a_exact = accuracy(&exact.predict(test.features()), &test.labels());
        let a_sketch = accuracy(&sketched.predict(test.features()), &test.labels());
        assert!(
            a_exact + 1e-9 >= a_sketch - 0.05,
            "exact {a_exact} vs aggressive sketch {a_sketch}"
        );
    }
}
