//! Alternative tree-growth policies.
//!
//! The paper's GPU baselines differ chiefly in how they grow trees:
//! XGBoost grows level-wise (that policy lives in `gbdt_core::grow`),
//! LightGBM grows **leaf-wise** (always expand the highest-gain open
//! leaf, bounded by a leaf budget), and CatBoost grows **oblivious**
//! (symmetric) trees where every node of a level shares one split
//! condition. Both policies here are full multi-output growers reusing
//! the core histogram and split machinery, so they also serve as
//! optional growth modes for GBDT-MO itself.

use gbdt_core::config::TrainConfig;
use gbdt_core::grad::Gradients;
use gbdt_core::grow::{partition_stable, GrowResult};
use gbdt_core::hist::{build_node_histogram, HistContext, NodeHistogram};
use gbdt_core::split::{
    find_best_split_batched, leaf_values, split_gain, LevelSplitCharges, SplitParams,
};
use gbdt_core::tree::Tree;
use gbdt_data::BinnedDataset;
use gpusim::cost::KernelCost;
use gpusim::{Device, Phase};
use std::collections::BTreeMap;

fn split_params(config: &TrainConfig) -> SplitParams {
    SplitParams {
        lambda: config.lambda,
        min_gain: config.min_gain,
        min_instances: config.min_instances,
        segments_c: config.segments_per_block_c,
    }
}

/// Grow one tree leaf-wise (LightGBM-style): repeatedly expand the
/// open leaf with the highest split gain until `max_leaves` leaves
/// exist or no leaf can split. Depth is still bounded by
/// `config.max_depth`.
pub fn grow_tree_leafwise(
    device: &Device,
    data: &BinnedDataset,
    grads: &Gradients,
    config: &TrainConfig,
    features: &[u32],
    max_leaves: usize,
) -> GrowResult {
    let d = grads.d;
    let ctx = HistContext {
        device,
        data,
        grads,
        features,
        bins: config.max_bins,
        opts: config.hist,
    };
    let params = split_params(config);

    struct Open {
        tree_node: usize,
        instances: Vec<u32>,
        g: Vec<f64>,
        h: Vec<f64>,
        depth: usize,
        split: Option<gbdt_core::split::SplitCandidate>,
    }

    let mut tree = Tree::new(d);
    let mut methods_used = BTreeMap::new();
    let mut hist = NodeHistogram::new(features.len(), d, config.max_bins);
    let mut charges = LevelSplitCharges::new();

    let evaluate = |hist: &mut NodeHistogram,
                    charges: &mut LevelSplitCharges,
                    methods: &mut BTreeMap<gbdt_core::HistogramMethod, usize>,
                    tree_node: usize,
                    instances: Vec<u32>,
                    g: Vec<f64>,
                    h: Vec<f64>,
                    depth: usize|
     -> Open {
        let split = if instances.len() >= 2 * config.min_instances && depth < config.max_depth {
            let m = build_node_histogram(&ctx, &instances, &g, &h, hist);
            *methods.entry(m).or_insert(0) += 1;
            let s = find_best_split_batched(
                charges,
                hist,
                features,
                &g,
                &h,
                instances.len() as u32,
                &params,
            );
            // Leaf-wise expansion is inherently sequential: every
            // evaluation is its own kernel group (no level batching).
            charges.flush(device, device.model().params.sm_count, params.segments_c);
            s
        } else {
            None
        };
        Open {
            tree_node,
            instances,
            g,
            h,
            depth,
            split,
        }
    };

    let root_idx: Vec<u32> = (0..grads.n as u32).collect();
    let (rg, rh) = grads.sums(&root_idx);
    let mut open = vec![evaluate(
        &mut hist,
        &mut charges,
        &mut methods_used,
        0,
        root_idx,
        rg,
        rh,
        0,
    )];
    let mut leaves = 1usize;

    while leaves < max_leaves {
        // Highest-gain open leaf (lowest tree_node breaks ties).
        let Some(best_at) = open
            .iter()
            .enumerate()
            .filter(|(_, o)| o.split.is_some())
            .max_by(|(ia, a), (ib, b)| {
                let ga = a.split.as_ref().unwrap().gain;
                let gb = b.split.as_ref().unwrap().gain;
                ga.partial_cmp(&gb).unwrap().then(ib.cmp(ia)) // lower index wins ties
            })
            .map(|(i, _)| i)
        else {
            break;
        };
        let node = open.swap_remove(best_at);
        let split = node.split.expect("filtered for splittable");

        let col = data.bins.col(split.feature as usize);
        let flags: Vec<bool> = node
            .instances
            .iter()
            .map(|&i| col[i as usize] <= split.bin)
            .collect();
        let (left_idx, right_idx) = partition_stable(&node.instances, &flags);
        device.charge_kernel(
            "partition",
            Phase::Partition,
            &KernelCost {
                flops: 3.0 * node.instances.len() as f64,
                dram_bytes: (node.instances.len() * 17) as f64,
                launches: 2.0,
                ..Default::default()
            },
        );

        let threshold = data.cuts.threshold(split.feature as usize, split.bin);
        let (l, r) = tree.split_node(node.tree_node, split.feature, split.bin, threshold);
        let right_g: Vec<f64> = node
            .g
            .iter()
            .zip(&split.left_g)
            .map(|(a, b)| a - b)
            .collect();
        let right_h: Vec<f64> = node
            .h
            .iter()
            .zip(&split.left_h)
            .map(|(a, b)| a - b)
            .collect();

        let lg = split.left_g;
        let lh = split.left_h;
        open.push(evaluate(
            &mut hist,
            &mut charges,
            &mut methods_used,
            l,
            left_idx,
            lg,
            lh,
            node.depth + 1,
        ));
        open.push(evaluate(
            &mut hist,
            &mut charges,
            &mut methods_used,
            r,
            right_idx,
            right_g,
            right_h,
            node.depth + 1,
        ));
        leaves += 1;
    }

    let mut leaf_assignments = Vec::with_capacity(open.len());
    let mut leaf_nodes = Vec::with_capacity(open.len());
    for node in open {
        let v = leaf_values(&node.g, &node.h, config.lambda, config.learning_rate);
        tree.set_leaf(node.tree_node, v.clone());
        leaf_assignments.push((node.instances, v));
        leaf_nodes.push(node.tree_node);
    }

    GrowResult {
        tree,
        leaf_assignments,
        leaf_nodes,
        methods_used,
    }
}

/// Grow one oblivious (symmetric) tree, CatBoost-style: at every level,
/// a single `(feature, bin)` condition is chosen to split *all* open
/// nodes, by maximizing the summed gain across them.
pub fn grow_tree_oblivious(
    device: &Device,
    data: &BinnedDataset,
    grads: &Gradients,
    config: &TrainConfig,
    features: &[u32],
) -> GrowResult {
    let d = grads.d;
    let bins = config.max_bins;
    let ctx = HistContext {
        device,
        data,
        grads,
        features,
        bins,
        opts: config.hist,
    };
    let params = split_params(config);

    let mut tree = Tree::new(d);
    let mut methods_used = BTreeMap::new();
    let mut hist = NodeHistogram::new(features.len(), d, bins);

    // Frontier: (tree node, instances, g sums, h sums).
    let root_idx: Vec<u32> = (0..grads.n as u32).collect();
    let (rg, rh) = grads.sums(&root_idx);
    let mut frontier = vec![(0usize, root_idx, rg, rh)];

    for _level in 0..config.max_depth {
        // Summed gain per (feature, bin) over all splittable nodes.
        let mut level_gains = vec![0.0f64; features.len() * bins];
        let mut any = false;
        for (_, instances, g, h) in &frontier {
            if instances.len() < 2 * config.min_instances {
                continue;
            }
            any = true;
            let m = build_node_histogram(&ctx, instances, g, h, &mut hist);
            *methods_used.entry(m).or_insert(0) += 1;
            for f_local in 0..features.len() {
                let mut gl = vec![0.0f64; d];
                let mut hl = vec![0.0f64; d];
                let mut left_cnt = 0u32;
                for b in 0..bins - 1 {
                    left_cnt += hist.counts[hist.cnt_index(f_local, b)];
                    for k in 0..d {
                        let at = hist.gh_index(f_local, k, b);
                        gl[k] += hist.g[at];
                        hl[k] += hist.h[at];
                    }
                    let right_cnt = instances.len() as u32 - left_cnt;
                    if (left_cnt as usize) < config.min_instances
                        || (right_cnt as usize) < config.min_instances
                    {
                        continue;
                    }
                    level_gains[f_local * bins + b] += split_gain(&gl, &hl, g, h, config.lambda);
                }
            }
        }
        if !any {
            break;
        }
        // One level-wide gain reduction kernel.
        device.charge_kernel(
            "oblivious_level_argmax",
            Phase::SplitEval,
            &KernelCost {
                flops: level_gains.len() as f64 * 2.0,
                dram_bytes: level_gains.len() as f64 * 8.0,
                launches: 2.0,
                ..Default::default()
            },
        );
        let (mut best_at, mut best_gain) = (0usize, f64::NEG_INFINITY);
        for (i, &g) in level_gains.iter().enumerate() {
            if g > best_gain {
                best_gain = g;
                best_at = i;
            }
        }
        if best_gain <= params.min_gain {
            break;
        }
        let f_local = best_at / bins;
        let b = (best_at % bins) as u8;
        let feature = features[f_local];
        let threshold = data.cuts.threshold(feature as usize, b);
        let col = data.bins.col(feature as usize);

        // Split every node by the shared condition.
        let mut next = Vec::with_capacity(frontier.len() * 2);
        let mut partition_elems = 0usize;
        for (tree_node, instances, g, h) in frontier {
            let flags: Vec<bool> = instances.iter().map(|&i| col[i as usize] <= b).collect();
            partition_elems += instances.len();
            let (left_idx, right_idx) = partition_stable(&instances, &flags);
            let (l, r) = tree.split_node(tree_node, feature, b, threshold);
            let (lg, lh) = grads.sums(&left_idx);
            let rg: Vec<f64> = g.iter().zip(&lg).map(|(a, x)| a - x).collect();
            let rh: Vec<f64> = h.iter().zip(&lh).map(|(a, x)| a - x).collect();
            next.push((l, left_idx, lg, lh));
            next.push((r, right_idx, rg, rh));
        }
        device.charge_kernel(
            "partition_level",
            Phase::Partition,
            &KernelCost {
                flops: 3.0 * partition_elems as f64,
                dram_bytes: (partition_elems * 17) as f64,
                launches: 2.0,
                ..Default::default()
            },
        );
        frontier = next;
    }

    let mut leaf_assignments = Vec::with_capacity(frontier.len());
    let mut leaf_nodes = Vec::with_capacity(frontier.len());
    for (tree_node, instances, g, h) in frontier {
        let v = leaf_values(&g, &h, config.lambda, config.learning_rate);
        tree.set_leaf(tree_node, v.clone());
        leaf_assignments.push((instances, v));
        leaf_nodes.push(tree_node);
    }

    GrowResult {
        tree,
        leaf_assignments,
        leaf_nodes,
        methods_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt_core::grad::compute_gradients;
    use gbdt_core::loss::MseLoss;
    use gbdt_data::synth::{make_regression, RegressionSpec};

    fn setup(n: usize, m: usize, d: usize) -> (BinnedDataset, Gradients, gbdt_data::Dataset) {
        let ds = make_regression(&RegressionSpec {
            instances: n,
            features: m,
            outputs: d,
            informative: (m / 2).max(1),
            noise: 0.05,
            seed: 11,
            ..Default::default()
        });
        let binned = BinnedDataset::build(ds.features(), 32);
        let device = Device::rtx4090();
        let scores = vec![0.0f32; n * d];
        let grads = compute_gradients(&device, &MseLoss, &scores, ds.targets(), n, d);
        (binned, grads, ds)
    }

    fn config() -> TrainConfig {
        TrainConfig {
            max_depth: 6,
            min_instances: 5,
            max_bins: 32,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn leafwise_respects_leaf_budget() {
        let (data, grads, _) = setup(400, 6, 2);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..6).collect();
        for budget in [2, 5, 16] {
            let res = grow_tree_leafwise(&device, &data, &grads, &config(), &features, budget);
            assert!(
                res.tree.num_leaves() <= budget,
                "{} leaves > budget {budget}",
                res.tree.num_leaves()
            );
            // Instances still partition exactly.
            let total: usize = res.leaf_assignments.iter().map(|(i, _)| i.len()).sum();
            assert_eq!(total, 400);
        }
    }

    #[test]
    fn leafwise_expands_highest_gain_first() {
        let (data, grads, _) = setup(500, 6, 2);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..6).collect();
        // With a budget of 2 (a stump), the single split must equal the
        // level-wise grower's root split.
        let leafwise = grow_tree_leafwise(&device, &data, &grads, &config(), &features, 2);
        let levelwise =
            gbdt_core::grow::grow_tree(&device, &data, &grads, &config().with_depth(1), &features);
        assert_eq!(leafwise.tree.nodes()[0], levelwise.tree.nodes()[0]);
    }

    #[test]
    fn oblivious_tree_is_symmetric() {
        let (data, grads, _) = setup(600, 8, 3);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..8).collect();
        let mut cfg = config();
        cfg.max_depth = 3;
        let res = grow_tree_oblivious(&device, &data, &grads, &cfg, &features);
        // Every level uses one (feature, bin): collect conditions by
        // BFS depth and check uniformity.
        use gbdt_core::tree::Node;
        let mut level_nodes = vec![vec![0usize]];
        loop {
            let last = level_nodes.last().unwrap();
            let mut nxt = Vec::new();
            for &at in last {
                if let Node::Split { left, right, .. } = &res.tree.nodes()[at] {
                    nxt.push(*left as usize);
                    nxt.push(*right as usize);
                }
            }
            if nxt.is_empty() {
                break;
            }
            level_nodes.push(nxt);
        }
        for level in &level_nodes {
            let conds: Vec<(u32, u8)> = level
                .iter()
                .filter_map(|&at| match &res.tree.nodes()[at] {
                    Node::Split { feature, bin, .. } => Some((*feature, *bin)),
                    Node::Leaf { .. } => None,
                })
                .collect();
            assert!(
                conds.windows(2).all(|w| w[0] == w[1]),
                "level conditions differ: {conds:?}"
            );
        }
    }

    #[test]
    fn both_policies_reduce_training_loss() {
        let (data, grads, ds) = setup(500, 6, 2);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..6).collect();
        for res in [
            grow_tree_leafwise(&device, &data, &grads, &config(), &features, 16),
            grow_tree_oblivious(&device, &data, &grads, &config(), &features),
        ] {
            let d = 2;
            let mut scores = vec![0.0f32; 500 * d];
            for (instances, value) in &res.leaf_assignments {
                for &i in instances {
                    for k in 0..d {
                        scores[i as usize * d + k] += value[k];
                    }
                }
            }
            let before: f64 = ds.targets().iter().map(|&t| (t as f64).powi(2)).sum();
            let after: f64 = scores
                .iter()
                .zip(ds.targets())
                .map(|(&s, &t)| ((s - t) as f64).powi(2))
                .sum();
            assert!(after < before * 0.9, "loss {after} not below {before}");
        }
    }

    #[test]
    fn oblivious_partitions_all_instances() {
        let (data, grads, _) = setup(300, 6, 2);
        let device = Device::rtx4090();
        let features: Vec<u32> = (0..6).collect();
        let res = grow_tree_oblivious(&device, &data, &grads, &config(), &features);
        let mut seen = vec![false; 300];
        for (instances, _) in &res.leaf_assignments {
            for &i in instances {
                assert!(!seen[i as usize]);
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }
}
