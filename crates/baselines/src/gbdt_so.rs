//! GBDT-SO: single-output GBDT baselines (paper Fig. 1, left side).
//!
//! Where GBDT-MO trains `|T|` trees with `d`-dimensional leaves, the
//! single-output systems train `d × |T|` trees — one ensemble per
//! class/label/target — which is exactly why their cost balloons with
//! the output count (the paper's Fig. 6b). Three flavours mirror the
//! paper's GPU baselines by growth policy:
//!
//! | flavour  | paper baseline | growth               |
//! |----------|----------------|----------------------|
//! | [`GrowthPolicy::LevelWise`] | XGBoost  | depth-synchronous    |
//! | [`GrowthPolicy::LeafWise`]  | LightGBM | best-gain-first      |
//! | [`GrowthPolicy::Oblivious`] | CatBoost | symmetric trees      |
//!
//! Multiclass training is faithful to the real systems: each boosting
//! round computes the softmax gradient over *all* class scores, then
//! fits one single-output tree per class on its gradient column.

use crate::growers::{grow_tree_leafwise, grow_tree_oblivious};
use gbdt_core::config::TrainConfig;
use gbdt_core::grad::{compute_gradients, update_scores_from_leaves, Gradients};
use gbdt_core::grow::{grow_tree, GrowResult};
use gbdt_core::loss::loss_for_task;
use gbdt_core::predict::{predict_raw, PredictMode};
use gbdt_core::trainer::base_scores;
use gbdt_core::tree::Tree;
use gbdt_data::{BinnedDataset, Dataset, DenseMatrix, Task};
use gpusim::cost::KernelCost;
use gpusim::{Device, LedgerSummary, Phase};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Tree-growth policy, distinguishing the three GPU baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GrowthPolicy {
    /// Depth-synchronous growth (XGBoost-style).
    LevelWise,
    /// Best-gain-first growth with a `2^max_depth` leaf budget
    /// (LightGBM-style).
    LeafWise,
    /// Symmetric/oblivious trees (CatBoost-style).
    Oblivious,
}

/// A trained single-output baseline: `d` independent ensembles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SoModel {
    /// `per_output[k]` is output `k`'s tree sequence (each tree has
    /// 1-dimensional leaves).
    pub per_output: Vec<Vec<Tree>>,
    /// Initial score per output.
    pub base: Vec<f32>,
    /// Output dimension.
    pub d: usize,
    /// Task trained for.
    pub task: Task,
}

impl SoModel {
    /// Raw `n × d` scores (column `k` from ensemble `k`).
    pub fn predict(&self, features: &DenseMatrix) -> Vec<f32> {
        let n = features.rows();
        let d = self.d;
        let mut scores = vec![0.0f32; n * d];
        for (k, trees) in self.per_output.iter().enumerate() {
            let col = predict_raw(trees, &[self.base[k]], features, PredictMode::InstanceLevel);
            for i in 0..n {
                scores[i * d + k] = col[i];
            }
        }
        scores
    }

    /// Total trees across all ensembles — `d×` the GBDT-MO count, the
    /// model-complexity argument of the paper's §2.1.
    pub fn num_trees(&self) -> usize {
        self.per_output.iter().map(Vec::len).sum()
    }

    /// Approximate model bytes.
    pub fn memory_bytes(&self) -> usize {
        self.per_output
            .iter()
            .flatten()
            .map(Tree::memory_bytes)
            .sum()
    }
}

/// Report of one GBDT-SO training run.
#[derive(Debug)]
pub struct SoReport {
    /// The trained model.
    pub model: SoModel,
    /// Simulated device time of the fit.
    pub sim: LedgerSummary,
    /// Simulated seconds.
    pub sim_seconds: f64,
    /// Host wall-clock seconds.
    pub host_seconds: f64,
}

/// Single-output GBDT trainer on the simulated device.
pub struct GbdtSoTrainer {
    device: Arc<Device>,
    config: TrainConfig,
    policy: GrowthPolicy,
}

impl GbdtSoTrainer {
    /// Create a trainer with the given growth policy.
    pub fn new(device: Arc<Device>, config: TrainConfig, policy: GrowthPolicy) -> Self {
        config.validate().expect("invalid training configuration");
        GbdtSoTrainer {
            device,
            config,
            policy,
        }
    }

    /// The device charged by this trainer.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    fn grow(&self, binned: &BinnedDataset, grads: &Gradients, features: &[u32]) -> GrowResult {
        match self.policy {
            GrowthPolicy::LevelWise => {
                grow_tree(&self.device, binned, grads, &self.config, features)
            }
            GrowthPolicy::LeafWise => {
                // LightGBM bounds the number of leaves, not the depth:
                // keep the leaf budget at 2^max_depth but let chains
                // grow deeper, as `num_leaves`-driven growth does.
                let mut cfg = self.config.clone();
                cfg.max_depth = (self.config.max_depth + 4).min(24);
                grow_tree_leafwise(
                    &self.device,
                    binned,
                    grads,
                    &cfg,
                    features,
                    1 << self.config.max_depth,
                )
            }
            GrowthPolicy::Oblivious => {
                grow_tree_oblivious(&self.device, binned, grads, &self.config, features)
            }
        }
    }

    /// Train and return just the model.
    pub fn fit(&self, ds: &Dataset) -> SoModel {
        self.fit_report(ds).model
    }

    /// Train with the timing report.
    pub fn fit_report(&self, ds: &Dataset) -> SoReport {
        let start = self.device.summary();
        let host_start = Instant::now();
        let n = ds.n();
        let d = ds.d();
        let device = &*self.device;

        let raw_bytes = (n * ds.m() * 4) as f64;
        device.charge_ns(
            "htod_features",
            Phase::Transfer,
            device.model().host_copy_ns(raw_bytes),
        );
        let binned = BinnedDataset::build(ds.features(), self.config.max_bins);
        device.charge_kernel(
            "quantile_binning",
            Phase::Binning,
            &KernelCost::streaming((n * ds.m()) as f64 * 16.0, raw_bytes * 2.5),
        );

        let base = base_scores(ds);
        let mut scores = vec![0.0f32; n * d];
        for row in scores.chunks_mut(d) {
            row.copy_from_slice(&base);
        }
        let loss = loss_for_task(ds.task());
        let features: Vec<u32> = (0..ds.m() as u32).collect();
        let mut per_output: Vec<Vec<Tree>> = vec![Vec::new(); d];

        for _round in 0..self.config.num_trees {
            // Full-dimensional gradients from the shared scores (softmax
            // couples the classes, exactly as XGBoost's multiclass mode).
            let grads = compute_gradients(device, loss.as_ref(), &scores, ds.targets(), n, d);
            for k in 0..d {
                // Column k as a single-output gradient set.
                let gk = Gradients {
                    g: (0..n).map(|i| grads.g[i * d + k]).collect(),
                    h: (0..n).map(|i| grads.h[i * d + k]).collect(),
                    n,
                    d: 1,
                };
                device.charge_kernel(
                    "strided_gather_column",
                    Phase::Gradient,
                    &KernelCost::streaming(n as f64, (n * 16) as f64),
                );
                let grown = self.grow(&binned, &gk, &features);
                // Scatter this tree's leaf deltas into score column k.
                let mut col_scores: Vec<f32> = (0..n).map(|i| scores[i * d + k]).collect();
                update_scores_from_leaves(device, &mut col_scores, 1, &grown.leaf_assignments);
                for i in 0..n {
                    scores[i * d + k] = col_scores[i];
                }
                per_output[k].push(grown.tree);
            }
        }

        let model = SoModel {
            per_output,
            base,
            d,
            task: ds.task(),
        };
        let sim = self.device.summary().since(&start);
        SoReport {
            sim_seconds: sim.total_ns * 1e-9,
            host_seconds: host_start.elapsed().as_secs_f64(),
            sim,
            model,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt_core::metrics::accuracy;
    use gbdt_core::trainer::GpuTrainer;
    use gbdt_data::synth::{make_classification, ClassificationSpec};

    fn dataset(classes: usize, seed: u64) -> Dataset {
        make_classification(&ClassificationSpec {
            instances: 400,
            features: 10,
            classes,
            informative: 8,
            class_sep: 2.0,
            flip_y: 0.0,
            seed,
            ..Default::default()
        })
    }

    fn quick_config() -> TrainConfig {
        TrainConfig {
            num_trees: 5,
            max_depth: 4,
            max_bins: 32,
            min_instances: 5,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn all_policies_learn() {
        let ds = dataset(3, 1);
        let (train, test) = ds.split(0.3, 2);
        for policy in [
            GrowthPolicy::LevelWise,
            GrowthPolicy::LeafWise,
            GrowthPolicy::Oblivious,
        ] {
            let model = GbdtSoTrainer::new(Device::rtx4090(), quick_config(), policy).fit(&train);
            let acc = accuracy(&model.predict(test.features()), &test.labels());
            assert!(acc > 0.7, "{policy:?} accuracy only {acc}");
        }
    }

    #[test]
    fn trains_d_times_more_trees_than_mo() {
        let ds = dataset(4, 2);
        let so =
            GbdtSoTrainer::new(Device::rtx4090(), quick_config(), GrowthPolicy::LevelWise).fit(&ds);
        let mo = GpuTrainer::new(Device::rtx4090(), quick_config()).fit(&ds);
        assert_eq!(so.num_trees(), 4 * mo.num_trees());
    }

    #[test]
    fn so_cost_scales_with_class_count_mo_does_not() {
        // The Fig. 6b mechanism: GBDT-SO simulated time grows roughly
        // linearly in d, GBDT-MO much slower.
        let few = dataset(2, 3);
        let many = dataset(8, 3);

        let so_few = GbdtSoTrainer::new(Device::rtx4090(), quick_config(), GrowthPolicy::LevelWise)
            .fit_report(&few);
        let so_many =
            GbdtSoTrainer::new(Device::rtx4090(), quick_config(), GrowthPolicy::LevelWise)
                .fit_report(&many);
        let so_ratio = so_many.sim_seconds / so_few.sim_seconds;

        let mo_few = GpuTrainer::new(Device::rtx4090(), quick_config()).fit_report(&few);
        let mo_many = GpuTrainer::new(Device::rtx4090(), quick_config()).fit_report(&many);
        let mo_ratio = mo_many.sim_seconds / mo_few.sim_seconds;

        assert!(
            so_ratio > 2.0,
            "SO should scale steeply with classes: ratio {so_ratio}"
        );
        assert!(
            mo_ratio < so_ratio,
            "MO ratio {mo_ratio} must beat SO ratio {so_ratio}"
        );
    }

    #[test]
    fn so_predictions_have_right_shape() {
        let ds = dataset(3, 4);
        let model =
            GbdtSoTrainer::new(Device::rtx4090(), quick_config(), GrowthPolicy::LeafWise).fit(&ds);
        let scores = model.predict(ds.features());
        assert_eq!(scores.len(), ds.n() * 3);
        assert!(model.memory_bytes() > 0);
    }
}
