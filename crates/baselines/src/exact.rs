//! Exact greedy split finding on raw (unbinned) feature values.
//!
//! The paper's §3.1.2 notes that split candidates can come either from
//! "enumerating all feature values" or from histogram cut points. This
//! module implements the enumeration path — the classic pre-sorted
//! exact greedy algorithm of XGBoost — as a correctness oracle: on data
//! whose features have at most `max_bins` distinct values, the
//! histogram pipeline must pick the same splits.

use gbdt_core::config::TrainConfig;
use gbdt_core::grad::Gradients;
use gbdt_core::split::{leaf_values, split_gain};
use gbdt_core::tree::Tree;
use gbdt_data::DenseMatrix;

/// An exact split candidate on raw values.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactSplit {
    /// Feature index.
    pub feature: u32,
    /// Float threshold: `value ≤ threshold` goes left (midpoint between
    /// adjacent distinct values).
    pub threshold: f32,
    /// Gain of Eq. (3).
    pub gain: f64,
}

/// Exhaustively find the best split of `instances` by scanning every
/// feature's sorted values. Returns `None` when no candidate clears
/// `min_gain` with both children ≥ `min_instances`.
pub fn exact_best_split(
    features: &DenseMatrix,
    grads: &Gradients,
    instances: &[u32],
    lambda: f64,
    min_gain: f64,
    min_instances: usize,
) -> Option<ExactSplit> {
    let d = grads.d;
    let (node_g, node_h) = grads.sums(instances);
    let mut best: Option<ExactSplit> = None;

    for f in 0..features.cols() {
        // Sort the node's instances by this feature's value (stable on
        // instance index for determinism).
        let mut order: Vec<u32> = instances.to_vec();
        order.sort_by(|&a, &b| {
            features
                .get(a as usize, f)
                .partial_cmp(&features.get(b as usize, f))
                .unwrap()
                .then(a.cmp(&b))
        });

        let mut gl = vec![0.0f64; d];
        let mut hl = vec![0.0f64; d];
        for pos in 0..order.len().saturating_sub(1) {
            let i = order[pos] as usize;
            for k in 0..d {
                gl[k] += grads.g[i * d + k] as f64;
                hl[k] += grads.h[i * d + k] as f64;
            }
            let v = features.get(i, f);
            let v_next = features.get(order[pos + 1] as usize, f);
            if v == v_next {
                continue; // can only split between distinct values
            }
            let left_count = pos + 1;
            let right_count = order.len() - left_count;
            if left_count < min_instances || right_count < min_instances {
                continue;
            }
            let gain = split_gain(&gl, &hl, &node_g, &node_h, lambda);
            let better = match &best {
                None => gain > min_gain,
                Some(b) => gain > b.gain + 1e-12 || (gain > min_gain && gain > b.gain),
            };
            if better {
                best = Some(ExactSplit {
                    feature: f as u32,
                    threshold: (v + v_next) * 0.5,
                    gain,
                });
            }
        }
    }
    best.filter(|b| b.gain > min_gain)
}

/// Grow a full tree with exact greedy splits (recursive, host-only).
/// Used as the oracle in integration tests.
pub fn grow_exact_tree(features: &DenseMatrix, grads: &Gradients, config: &TrainConfig) -> Tree {
    let mut tree = Tree::new(grads.d);
    let all: Vec<u32> = (0..grads.n as u32).collect();
    grow_rec(features, grads, config, &mut tree, 0, all, 0);
    tree
}

fn grow_rec(
    features: &DenseMatrix,
    grads: &Gradients,
    config: &TrainConfig,
    tree: &mut Tree,
    node: usize,
    instances: Vec<u32>,
    depth: usize,
) {
    let (g, h) = grads.sums(&instances);
    let make_leaf = |tree: &mut Tree| {
        tree.set_leaf(
            node,
            leaf_values(&g, &h, config.lambda, config.learning_rate),
        );
    };
    if depth >= config.max_depth || instances.len() < 2 * config.min_instances {
        make_leaf(tree);
        return;
    }
    let Some(split) = exact_best_split(
        features,
        grads,
        &instances,
        config.lambda,
        config.min_gain,
        config.min_instances,
    ) else {
        make_leaf(tree);
        return;
    };
    let (mut left, mut right) = (Vec::new(), Vec::new());
    for &i in &instances {
        if features.get(i as usize, split.feature as usize) <= split.threshold {
            left.push(i);
        } else {
            right.push(i);
        }
    }
    // Bin 0 is a placeholder: exact trees route by float threshold only.
    let (l, r) = tree.split_node(node, split.feature, 0, split.threshold);
    grow_rec(features, grads, config, tree, l, left, depth + 1);
    grow_rec(features, grads, config, tree, r, right, depth + 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt_core::grad::compute_gradients;
    use gbdt_core::grow::grow_tree;
    use gbdt_core::loss::MseLoss;
    use gbdt_core::tree::Node;
    use gbdt_data::synth::{make_regression, RegressionSpec};
    use gbdt_data::BinnedDataset;
    use gpusim::Device;

    /// Small data with few distinct values per feature so that 256-bin
    /// histograms are *exact*.
    fn coarse_dataset(n: usize, m: usize, d: usize) -> (DenseMatrix, Gradients) {
        let ds = make_regression(&RegressionSpec {
            instances: n,
            features: m,
            outputs: d,
            informative: m,
            noise: 0.1,
            seed: 33,
            ..Default::default()
        });
        // Quantize feature values to 10 distinct levels.
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            rows.push(
                ds.features()
                    .row(i)
                    .iter()
                    .map(|&v| (v * 2.0).round() / 2.0)
                    .collect::<Vec<f32>>(),
            );
        }
        let features = DenseMatrix::from_rows(&rows);
        let device = Device::rtx4090();
        let scores = vec![0.0f32; n * d];
        let grads = compute_gradients(&device, &MseLoss, &scores, ds.targets(), n, d);
        (features, grads)
    }

    #[test]
    fn exact_split_maximizes_gain() {
        // One feature separating two gradient groups perfectly.
        let features = DenseMatrix::new(6, 1, vec![1.0, 1.0, 1.0, 5.0, 5.0, 5.0]);
        let grads = Gradients {
            g: vec![-2.0, -2.0, -2.0, 2.0, 2.0, 2.0],
            h: vec![2.0; 6],
            n: 6,
            d: 1,
        };
        let s = exact_best_split(&features, &grads, &[0, 1, 2, 3, 4, 5], 1.0, 0.0, 1).unwrap();
        assert_eq!(s.feature, 0);
        assert_eq!(s.threshold, 3.0);
        assert!(s.gain > 0.0);
    }

    #[test]
    fn no_split_on_constant_feature() {
        let features = DenseMatrix::new(4, 1, vec![7.0; 4]);
        let grads = Gradients {
            g: vec![-1.0, 1.0, -1.0, 1.0],
            h: vec![2.0; 4],
            n: 4,
            d: 1,
        };
        assert!(exact_best_split(&features, &grads, &[0, 1, 2, 3], 1.0, 0.0, 1).is_none());
    }

    #[test]
    fn histogram_tree_matches_exact_tree_on_coarse_data() {
        // With exact (per-distinct-value) bins, the histogram grower and
        // the exact grower must choose the same split structure.
        let (features, grads) = coarse_dataset(300, 4, 2);
        let config = TrainConfig {
            max_depth: 3,
            min_instances: 10,
            max_bins: 256,
            ..TrainConfig::default()
        };
        let exact = grow_exact_tree(&features, &grads, &config);

        let binned = BinnedDataset::build(&features, 256);
        let device = Device::rtx4090();
        let feats: Vec<u32> = (0..4).collect();
        let hist_tree = grow_tree(&device, &binned, &grads, &config, &feats).tree;

        assert_eq!(exact.num_nodes(), hist_tree.num_nodes());
        // Same split features/thresholds by recursive traversal (the
        // two growers append nodes in different orders — DFS vs BFS —
        // so index-wise comparison would be meaningless).
        fn compare(a: &Tree, at_a: usize, b: &Tree, at_b: usize) {
            match (&a.nodes()[at_a], &b.nodes()[at_b]) {
                (
                    Node::Split {
                        feature: fa,
                        threshold: ta,
                        left: la,
                        right: ra,
                        ..
                    },
                    Node::Split {
                        feature: fb,
                        threshold: tb,
                        left: lb,
                        right: rb,
                        ..
                    },
                ) => {
                    assert_eq!(fa, fb, "split feature differs");
                    assert!((ta - tb).abs() < 1e-5, "threshold {ta} vs {tb}");
                    compare(a, *la as usize, b, *lb as usize);
                    compare(a, *ra as usize, b, *rb as usize);
                }
                (Node::Leaf { value: va }, Node::Leaf { value: vb }) => {
                    for (x, y) in va.iter().zip(vb) {
                        assert!((x - y).abs() < 1e-4, "leaf {x} vs {y}");
                    }
                }
                (x, y) => panic!("structure mismatch: {x:?} vs {y:?}"),
            }
        }
        compare(&exact, 0, &hist_tree, 0);
    }

    #[test]
    fn min_instances_respected() {
        let (features, grads) = coarse_dataset(50, 3, 1);
        let all: Vec<u32> = (0..50).collect();
        let s = exact_best_split(&features, &grads, &all, 1.0, 0.0, 25);
        if let Some(s) = s {
            let left = all
                .iter()
                .filter(|&&i| features.get(i as usize, s.feature as usize) <= s.threshold)
                .count();
            assert!(left >= 25 && 50 - left >= 25);
        }
    }
}
