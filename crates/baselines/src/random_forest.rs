//! Multi-output random forest — the bagging-family comparator from the
//! paper's related work ("multi-output random forests ensuring
//! robustness and interpretability", §5).
//!
//! Each tree fits the raw targets directly (one full-strength MSE
//! gradient step from zero scores is exactly a variance-reduction
//! regression tree whose leaves hold target means) on a bootstrap
//! sample, with a random feature subset per tree; predictions average
//! the ensemble. Runs on the simulated device like every other GPU
//! system here, so it slots into the same comparison tables.

use gbdt_core::config::TrainConfig;
use gbdt_core::grad::Gradients;
use gbdt_core::grow::grow_tree_on;
use gbdt_core::predict::{predict_raw, PredictMode};
use gbdt_core::tree::Tree;
use gbdt_data::{BinnedDataset, Dataset, DenseMatrix};
use gpusim::cost::KernelCost;
use gpusim::{Device, LedgerSummary, Phase};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Random-forest hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees.
    pub num_trees: usize,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Histogram bins.
    pub max_bins: usize,
    /// Minimum instances per leaf.
    pub min_instances: usize,
    /// Features considered per tree (fraction; classic RF uses √m —
    /// pass `None` for that default).
    pub feature_fraction: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            num_trees: 50,
            max_depth: 8,
            max_bins: 64,
            min_instances: 5,
            feature_fraction: None,
            seed: 0,
        }
    }
}

/// A trained multi-output random forest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForestModel {
    /// The trees (each with `d`-dimensional mean leaves).
    pub trees: Vec<Tree>,
    /// Output dimension.
    pub d: usize,
}

impl ForestModel {
    /// Averaged `n × d` predictions.
    pub fn predict(&self, features: &DenseMatrix) -> Vec<f32> {
        let base = vec![0.0f32; self.d];
        let mut sum = predict_raw(&self.trees, &base, features, PredictMode::InstanceLevel);
        let inv = 1.0 / self.trees.len().max(1) as f32;
        for v in &mut sum {
            *v *= inv;
        }
        sum
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

/// Report of one forest fit.
#[derive(Debug)]
pub struct ForestReport {
    /// The trained forest.
    pub model: ForestModel,
    /// Simulated device time.
    pub sim: LedgerSummary,
    /// Simulated seconds.
    pub sim_seconds: f64,
    /// Host wall-clock seconds.
    pub host_seconds: f64,
}

/// Multi-output random-forest trainer on the simulated device.
pub struct RandomForestTrainer {
    device: Arc<Device>,
    config: ForestConfig,
}

impl RandomForestTrainer {
    /// Create a trainer.
    pub fn new(device: Arc<Device>, config: ForestConfig) -> Self {
        assert!(config.num_trees > 0, "need at least one tree");
        RandomForestTrainer { device, config }
    }

    /// Fit and return just the model.
    pub fn fit(&self, ds: &Dataset) -> ForestModel {
        self.fit_report(ds).model
    }

    /// Fit with the timing report.
    pub fn fit_report(&self, ds: &Dataset) -> ForestReport {
        let start = self.device.summary();
        let host_start = Instant::now();
        let n = ds.n();
        let d = ds.d();
        let device = &*self.device;
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);

        let raw_bytes = (n * ds.m() * 4) as f64;
        device.charge_ns(
            "htod_features",
            Phase::Transfer,
            device.model().host_copy_ns(raw_bytes),
        );
        let binned = BinnedDataset::build(ds.features(), self.config.max_bins);
        device.charge_kernel(
            "quantile_binning",
            Phase::Binning,
            &KernelCost::streaming((n * ds.m()) as f64 * 16.0, raw_bytes * 2.5),
        );

        // A variance-reduction tree = one full MSE gradient step from
        // zero scores: g = −2y, h = 2 ⇒ leaf value −G/(H+λ) = mean(y)
        // with λ = 0.
        let grads = Gradients {
            g: ds.targets().iter().map(|&y| -2.0 * y).collect(),
            h: vec![2.0; n * d],
            n,
            d,
        };
        device.charge_kernel(
            "rf_pseudo_gradients",
            Phase::Gradient,
            &KernelCost::streaming((n * d) as f64, (n * d * 12) as f64),
        );

        let m = ds.m();
        let feature_count = match self.config.feature_fraction {
            Some(f) => ((m as f64 * f).round() as usize).clamp(1, m),
            None => (m as f64).sqrt().round().max(1.0) as usize,
        };
        let tree_config = TrainConfig {
            num_trees: 1,
            max_depth: self.config.max_depth,
            max_bins: self.config.max_bins,
            min_instances: self.config.min_instances,
            lambda: 0.0,
            learning_rate: 1.0,
            ..TrainConfig::default()
        };

        let mut trees = Vec::with_capacity(self.config.num_trees);
        for _ in 0..self.config.num_trees {
            // Bootstrap sample (with replacement), sorted for locality.
            let mut sample: Vec<u32> = (0..n).map(|_| rng.gen_range(0..n as u32)).collect();
            sample.sort_unstable();
            // Random feature subset.
            let mut features: Vec<u32> = (0..m as u32).collect();
            features.shuffle(&mut rng);
            features.truncate(feature_count);
            features.sort_unstable();

            let grown = grow_tree_on(device, &binned, &grads, &tree_config, &features, sample);
            trees.push(grown.tree);
        }

        let model = ForestModel { trees, d };
        let sim = self.device.summary().since(&start);
        ForestReport {
            sim_seconds: sim.total_ns * 1e-9,
            host_seconds: host_start.elapsed().as_secs_f64(),
            sim,
            model,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbdt_core::{accuracy, rmse};
    use gbdt_data::synth::{
        make_classification, make_regression, ClassificationSpec, RegressionSpec,
    };

    fn quick() -> ForestConfig {
        ForestConfig {
            num_trees: 20,
            max_depth: 6,
            max_bins: 32,
            min_instances: 3,
            ..ForestConfig::default()
        }
    }

    #[test]
    fn forest_learns_classification() {
        let ds = make_classification(&ClassificationSpec {
            instances: 600,
            features: 12,
            classes: 3,
            informative: 9,
            class_sep: 2.0,
            flip_y: 0.0,
            seed: 60,
            ..Default::default()
        });
        let (train, test) = ds.split(0.3, 61);
        let model = RandomForestTrainer::new(Device::rtx4090(), quick()).fit(&train);
        let acc = accuracy(&model.predict(test.features()), &test.labels());
        assert!(acc > 0.75, "forest accuracy {acc}");
    }

    #[test]
    fn forest_learns_regression_and_beats_mean() {
        let ds = make_regression(&RegressionSpec {
            instances: 700,
            features: 10,
            outputs: 3,
            informative: 7,
            noise: 0.05,
            seed: 62,
            ..Default::default()
        });
        let (train, test) = ds.split(0.3, 63);
        let model = RandomForestTrainer::new(Device::rtx4090(), quick()).fit(&train);
        let e = rmse(&model.predict(test.features()), test.targets());
        let mean: f32 = train.targets().iter().sum::<f32>() / train.targets().len() as f32;
        let e0 = rmse(&vec![mean; test.targets().len()], test.targets());
        assert!(e < e0 * 0.8, "forest rmse {e} vs global-mean {e0}");
    }

    #[test]
    fn forest_is_deterministic() {
        let ds = make_classification(&ClassificationSpec {
            instances: 300,
            features: 8,
            classes: 3,
            informative: 6,
            seed: 64,
            ..Default::default()
        });
        let a = RandomForestTrainer::new(Device::rtx4090(), quick()).fit(&ds);
        let b = RandomForestTrainer::new(Device::rtx4090(), quick()).fit(&ds);
        assert_eq!(a.predict(ds.features()), b.predict(ds.features()));
    }

    #[test]
    fn trees_differ_thanks_to_bagging() {
        let ds = make_classification(&ClassificationSpec {
            instances: 400,
            features: 12,
            classes: 3,
            informative: 9,
            seed: 65,
            ..Default::default()
        });
        let model = RandomForestTrainer::new(Device::rtx4090(), quick()).fit(&ds);
        let distinct = model.trees.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            distinct > 0,
            "bootstrap/feature sampling must diversify trees"
        );
        assert_eq!(model.num_trees(), 20);
    }

    #[test]
    fn averaging_bounds_predictions() {
        // Forest output is a mean of per-tree leaf means of one-hot
        // targets → every class score stays in [0, 1].
        let ds = make_classification(&ClassificationSpec {
            instances: 300,
            features: 8,
            classes: 3,
            informative: 6,
            seed: 66,
            ..Default::default()
        });
        let model = RandomForestTrainer::new(Device::rtx4090(), quick()).fit(&ds);
        let scores = model.predict(ds.features());
        assert!(
            scores.iter().all(|&s| (-0.01..=1.01).contains(&s)),
            "scores outside [0,1]"
        );
    }
}
