//! # gbdt-mo — GPU-accelerated multi-output gradient boosted decision trees
//!
//! Façade crate over the workspace, re-exporting the full public API:
//!
//! * [`gpusim`] — the simulated CUDA-like device substrate (functional
//!   kernels + analytical cost model);
//! * [`data`] — dense/CSC storage, quantile binning, bin packing and
//!   synthetic dataset generators;
//! * [`core`] — the paper's contribution: the GPU GBDT-MO trainer with
//!   adaptive histogram building, warp-level optimization, segmented
//!   split search and multi-GPU feature partitioning;
//! * [`baselines`] — the systems the paper compares against (GBDT-SO,
//!   CPU GBDT-MO dense/sparse, SketchBoost-style sketching, exact
//!   greedy).
//!
//! ## Quickstart
//!
//! ```
//! use gbdt_mo::prelude::*;
//!
//! // A small synthetic 3-class problem.
//! let ds = make_classification(&ClassificationSpec {
//!     instances: 400,
//!     features: 10,
//!     classes: 3,
//!     informative: 8,
//!     seed: 7,
//!     ..Default::default()
//! });
//! let (train, test) = ds.split(0.25, 42);
//!
//! let device = Device::rtx4090();
//! let config = TrainConfig {
//!     num_trees: 10,
//!     max_depth: 4,
//!     ..TrainConfig::default()
//! };
//! let model = GpuTrainer::new(device, config).fit(&train);
//! let acc = accuracy(&model.predict(test.features()), &test.labels());
//! assert!(acc > 0.5);
//! ```

pub use gbdt_baselines as baselines;
pub use gbdt_core as core;
pub use gbdt_data as data;
pub use gpusim;

/// Commonly used items in one import.
pub mod prelude {
    pub use crate::core::{
        accuracy, rmse, GpuTrainer, HistogramMethod, Model, MultiGpuTrainer, TrainConfig,
    };
    pub use crate::data::{
        make_classification, make_multilabel, make_regression, BinnedDataset, ClassificationSpec,
        Dataset, MultilabelSpec, RegressionSpec, Task,
    };
    pub use gpusim::{Device, DeviceGroup, Phase};
}
