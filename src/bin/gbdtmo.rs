//! `gbdtmo` — command-line interface for training, evaluating and
//! serving multi-output GBDT models on the simulated GPU.
//!
//! ```text
//! gbdtmo train    --data train.libsvm --task multiclass --outputs 10 --features 784 \
//!                 [--format libsvm|csv] [--trees 100] [--depth 7] [--bins 256]
//!                 [--lr 1.0] [--valid valid.libsvm --patience 10] --out model.json
//! gbdtmo predict  --model model.json --data test.libsvm --task multiclass \
//!                 --outputs 10 --features 784 [--transformed] [--out preds.csv]
//! gbdtmo evaluate --model model.json --data test.libsvm --task multiclass \
//!                 --outputs 10 --features 784
//! gbdtmo info     --model model.json [--top 10]
//! gbdtmo synth    --dataset mnist [--scale 0.05] --out data.libsvm
//! ```

use gbdt_core::importance::top_features;
use gbdt_core::{accuracy, rmse, GpuTrainer, Model, TrainConfig};
use gbdt_data::io::{read_csv, read_libsvm, write_libsvm};
use gbdt_data::{Dataset, PaperDataset, Task, PAPER_DATASETS};
use gpusim::Device;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: gbdtmo <train|predict|evaluate|info|synth> [flags]
  train    --data F --task T --outputs D --features M --out MODEL
           [--format libsvm|csv] [--trees N] [--depth N] [--bins N]
           [--lr F] [--subsample F] [--valid F --patience N] [--seed S]
  predict  --model MODEL --data F --task T --outputs D --features M
           [--format libsvm|csv] [--transformed] [--out CSV]
  evaluate --model MODEL --data F --task T --outputs D --features M
  info     --model MODEL [--top N]
  synth    --dataset <otto|sf-crime|helena|caltech101|mnist|mnist-in|rf1|delicious|nus-wide>
           [--scale F] [--seed S] --out F";

/// Print a line to stdout, treating a closed pipe (`… | head`) as a
/// clean exit instead of a panic.
fn say(line: std::fmt::Arguments<'_>) -> Result<(), String> {
    use std::io::Write as _;
    let mut out = std::io::stdout().lock();
    match writeln!(out, "{line}") {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => std::process::exit(0),
        Err(e) => Err(e.to_string()),
    }
}

macro_rules! say {
    ($($arg:tt)*) => { say(format_args!($($arg)*))? };
}

/// Parsed `--flag value` pairs.
struct Flags(HashMap<String, String>);

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut map = HashMap::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {:?}", args[i]))?;
            if key == "transformed" {
                map.insert(key.to_string(), "true".to_string());
                i += 1;
                continue;
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("missing value for --{key}"))?;
            map.insert(key.to_string(), value.clone());
            i += 2;
        }
        Ok(Flags(map))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("--{key} is required"))
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{key}: {e}")),
        }
    }
}

fn parse_task(s: &str) -> Result<Task, String> {
    match s {
        "multiclass" => Ok(Task::MultiClass),
        "multilabel" => Ok(Task::MultiLabel),
        "multiregress" | "multiregression" => Ok(Task::MultiRegression),
        other => Err(format!("unknown task {other:?}")),
    }
}

fn load_dataset(flags: &Flags) -> Result<Dataset, String> {
    let path = flags.require("data")?;
    let task = parse_task(flags.require("task")?)?;
    let outputs: usize = flags
        .require("outputs")?
        .parse()
        .map_err(|e| format!("--outputs: {e}"))?;
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let reader = BufReader::new(file);
    match flags.get("format").unwrap_or("libsvm") {
        "libsvm" => {
            let features: usize = flags
                .require("features")?
                .parse()
                .map_err(|e| format!("--features: {e}"))?;
            read_libsvm(reader, features, outputs, task)
        }
        "csv" => read_csv(reader, outputs, task),
        other => Err(format!("unknown format {other:?}")),
    }
}

fn load_model(flags: &Flags) -> Result<Model, String> {
    let path = flags.require("model")?;
    let data = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    if data.starts_with(b"GBMO") {
        gbdt_core::serialize::from_bytes(&data)
    } else {
        let json = String::from_utf8(data).map_err(|e| format!("{path}: {e}"))?;
        Model::from_json(&json)
    }
}

fn metric_line(task: Task, model: &Model, ds: &Dataset) -> String {
    let scores = model.predict(ds.features());
    match task {
        Task::MultiClass => format!("accuracy: {:.4}", accuracy(&scores, &ds.labels())),
        Task::MultiRegression => format!("rmse: {:.6}", rmse(&scores, ds.targets())),
        Task::MultiLabel => {
            let mut probs = model.predict_transformed(ds.features());
            let _ = &mut probs;
            format!("prob-rmse: {:.6}", rmse(&probs, ds.targets()))
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let flags = Flags::parse(args.get(1..).unwrap_or(&[]))?;
    match cmd {
        "train" => train(&flags),
        "predict" => predict(&flags),
        "evaluate" => evaluate(&flags),
        "info" => info(&flags),
        "synth" => synth(&flags),
        "help" | "--help" | "-h" => {
            say!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

fn train(flags: &Flags) -> Result<(), String> {
    let ds = load_dataset(flags)?;
    let out_path = flags.require("out")?;
    let config = TrainConfig {
        num_trees: flags.parse_or("trees", 100)?,
        max_depth: flags.parse_or("depth", 7)?,
        max_bins: flags.parse_or("bins", 256)?,
        learning_rate: flags.parse_or("lr", 1.0f32)?,
        subsample: flags.parse_or("subsample", 1.0f64)?,
        colsample_bytree: flags.parse_or("colsample", 1.0f64)?,
        seed: flags.parse_or("seed", 0u64)?,
        ..TrainConfig::default()
    };
    config.validate()?;

    eprintln!(
        "training on {} instances × {} features → {} outputs ({:?})",
        ds.n(),
        ds.m(),
        ds.d(),
        ds.task()
    );
    let trainer = GpuTrainer::new(Device::rtx4090(), config);
    let (model, summary) = if let Some(valid_path) = flags.get("valid") {
        let vfile = File::open(valid_path).map_err(|e| format!("{valid_path}: {e}"))?;
        let task = ds.task();
        let valid = match flags.get("format").unwrap_or("libsvm") {
            "csv" => read_csv(BufReader::new(vfile), ds.d(), task)?,
            _ => read_libsvm(BufReader::new(vfile), ds.m(), ds.d(), task)?,
        };
        let patience = flags.parse_or("patience", 10usize)?;
        let r = trainer.fit_with_validation(&ds, &valid, patience);
        eprintln!(
            "early stopping: best iteration {} of {} evaluated (valid loss {:.6})",
            r.best_iteration + 1,
            r.history.len(),
            r.history[r.best_iteration]
        );
        (r.report.model, r.report.sim)
    } else {
        let r = trainer.fit_report(&ds);
        (r.model, r.sim)
    };
    eprintln!(
        "trained {} trees in {:.3} simulated ms",
        model.num_trees(),
        summary.total_ns * 1e-6
    );
    eprintln!("train {}", metric_line(ds.task(), &model, &ds));
    // `.bin` extension selects the compact binary format.
    if out_path.ends_with(".bin") {
        std::fs::write(out_path, gbdt_core::serialize::to_bytes(&model))
            .map_err(|e| format!("{out_path}: {e}"))?;
    } else {
        std::fs::write(out_path, model.to_json()).map_err(|e| format!("{out_path}: {e}"))?;
    }
    eprintln!("model written to {out_path}");
    Ok(())
}

fn predict(flags: &Flags) -> Result<(), String> {
    let model = load_model(flags)?;
    let ds = load_dataset(flags)?;
    let scores = if flags.get("transformed").is_some() {
        model.predict_transformed(ds.features())
    } else {
        model.predict(ds.features())
    };
    let mut out: Box<dyn Write> = match flags.get("out") {
        Some(path) => Box::new(BufWriter::new(
            File::create(path).map_err(|e| format!("{path}: {e}"))?,
        )),
        None => Box::new(std::io::stdout().lock()),
    };
    let header: Vec<String> = (0..model.d).map(|k| format!("y{k}")).collect();
    writeln!(out, "{}", header.join(",")).map_err(|e| e.to_string())?;
    for row in scores.chunks(model.d) {
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(out, "{}", cells.join(",")).map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn evaluate(flags: &Flags) -> Result<(), String> {
    let model = load_model(flags)?;
    let ds = load_dataset(flags)?;
    say!("{}", metric_line(ds.task(), &model, &ds));
    Ok(())
}

fn info(flags: &Flags) -> Result<(), String> {
    let model = load_model(flags)?;
    say!("trees:       {}", model.num_trees());
    say!("leaves:      {}", model.num_leaves());
    say!("outputs:     {}", model.d);
    say!("task:        {:?}", model.task);
    say!("model bytes: {}", model.memory_bytes());
    let num_features = model
        .trees
        .iter()
        .flat_map(|t| t.nodes().iter())
        .filter_map(|n| match n {
            gbdt_core::Node::Split { feature, .. } => Some(*feature as usize + 1),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    let top_n = flags.parse_or("top", 10usize)?;
    if num_features > 0 {
        say!("top features by split count:");
        for (f, c) in top_features(&model, num_features, top_n) {
            if c > 0 {
                say!("  f{f}: {c}");
            }
        }
    }
    Ok(())
}

fn synth(flags: &Flags) -> Result<(), String> {
    let name = flags.require("dataset")?;
    let ds = PAPER_DATASETS
        .into_iter()
        .find(|d| d.shape().name.eq_ignore_ascii_case(name))
        .or_else(|| match name.to_ascii_lowercase().as_str() {
            "sf-crime" | "sfcrime" => Some(PaperDataset::SfCrime),
            "mnist-in" | "mnistin" => Some(PaperDataset::MnistIn),
            "nus-wide" | "nuswide" => Some(PaperDataset::NusWide),
            _ => None,
        })
        .ok_or_else(|| format!("unknown dataset {name:?}"))?;
    let scale = flags.parse_or("scale", 0.05f64)?;
    let seed = flags.parse_or("seed", 0u64)?;
    let out_path = flags.require("out")?;
    let data = ds.generate(scale, usize::MAX, usize::MAX, seed);
    let file = File::create(out_path).map_err(|e| format!("{out_path}: {e}"))?;
    write_libsvm(BufWriter::new(file), &data).map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} instances × {} features × {} outputs to {out_path}",
        data.n(),
        data.m(),
        data.d()
    );
    eprintln!(
        "train with: gbdtmo train --data {out_path} --task {} --outputs {} --features {} --out model.json",
        match data.task() {
            Task::MultiClass => "multiclass",
            Task::MultiLabel => "multilabel",
            Task::MultiRegression => "multiregress",
        },
        data.d(),
        data.m()
    );
    Ok(())
}
