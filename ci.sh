#!/usr/bin/env bash
# Tier-1 gate (ROADMAP.md) plus lint/format checks. Run from the repo
# root; exits nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "ci: all checks passed"
