#!/usr/bin/env bash
# Tier-1 gate (ROADMAP.md) plus lint/format checks. Run from the repo
# root; exits nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> repo-lint (crates/core, crates/gpusim)"
cargo run --release -q -p repo-lint -- crates/core/src crates/gpusim/src

echo "==> repo-lint self-check (must fail on seeded fixture)"
if cargo run --release -q -p repo-lint -- crates/lint/fixtures >/dev/null 2>&1; then
  echo "ci: repo-lint failed to flag the seeded fixture violations" >&2
  exit 1
fi

echo "==> sanitized smoke train (repro sanitize: dense + every sketch mode × hist method)"
cargo run --release -q -p gbdt-bench --bin repro -- sanitize --trees 2 --depth 4 --bins 32 >/dev/null

echo "==> bench smoke grid + schema validation + regression gate"
# Runs the reduced paper grid, writes a schema-versioned BENCH_repro.json,
# validates it parses under the strict schema reader, and diff-gates
# hist-share / quality against the committed baseline (host wall-clock is
# informational only and never gated).
cargo run --release -q -p gbdt-bench --bin repro -- bench --smoke \
  --out BENCH_repro.json --baseline BENCH_baseline.json --check >/dev/null

echo "ci: all checks passed"
