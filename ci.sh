#!/usr/bin/env bash
# Tier-1 gate (ROADMAP.md) plus lint/format checks. Run from the repo
# root; exits nonzero on the first failure.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> repo-lint workspace contract (zero violations, JSON emitted)"
# Full kernel-contract pass over the workspace: style + determinism
# hazards + cross-artifact checks (phase schema, canonical names,
# profiler coverage, sanitizer coverage, DESIGN.md inventory). Writes
# the schema-versioned diagnostics to LINT_repro.json.
cargo run --release -q -p repo-lint -- --json LINT_repro.json
grep -q '"lint_schema_version": 1' LINT_repro.json || {
  echo "ci: LINT_repro.json missing schema version header" >&2
  exit 1
}

echo "==> repo-lint self-check (style rules must fire on seeded fixture)"
if cargo run --release -q -p repo-lint -- crates/lint/fixtures/violations.rs.txt >/dev/null 2>&1; then
  echo "ci: repo-lint failed to flag the seeded fixture violations" >&2
  exit 1
fi

echo "==> repo-lint self-check (contract rules must fire on bad_repo)"
# Every v2 rule — near-dup kernel names, missing phase key, profiler
# coverage, sanitizer coverage, inventory, HashMap iteration, unordered
# parallel float reduce, and waiver-without-reason rejection — is seeded
# in this fixture tree; the golden test pins the exact JSON.
if cargo run --release -q -p repo-lint -- --contract-root crates/lint/fixtures/bad_repo >/dev/null 2>&1; then
  echo "ci: repo-lint failed to flag the bad_repo contract violations" >&2
  exit 1
fi
for rule in canonical_kernel_name metric_name_canonical phase_in_bench_schema \
            prof_coverage sanitize \
            design_inventory hashmap_iteration unordered_float_reduce \
            waiver_without_reason; do
  # `|| true` inside the pipeline: the analyzer exits 1 on violations,
  # which is exactly the state being asserted — pipefail must not trip.
  (cargo run --release -q -p repo-lint -- --contract-root crates/lint/fixtures/bad_repo 2>/dev/null || true) \
    | grep -q "\[$rule\]" || {
      echo "ci: rule $rule did not fire on bad_repo" >&2
      exit 1
    }
done

echo "==> repo-lint self-check (good_repo must satisfy the contract)"
cargo run --release -q -p repo-lint -- --contract-root crates/lint/fixtures/good_repo >/dev/null

echo "==> repo-lint golden JSON diagnostics"
cargo test -q -p repo-lint --test golden_json >/dev/null

echo "==> sanitized smoke train (repro sanitize: dense + every sketch mode × hist method)"
cargo run --release -q -p gbdt-bench --bin repro -- sanitize --trees 2 --depth 4 --bins 32 >/dev/null

echo "==> bench smoke grid + schema validation + regression gate"
# Runs the reduced paper grid, writes a schema-versioned BENCH_repro.json,
# validates it parses under the strict schema reader, and diff-gates
# hist-share / quality against the committed baseline (host wall-clock is
# informational only and never gated).
cargo run --release -q -p gbdt-bench --bin repro -- bench --smoke \
  --out BENCH_repro.json --baseline BENCH_baseline.json --check >/dev/null

echo "==> stream overlap smoke (streamed grid must record overlap savings)"
# The streamed smoke grid must train bit-identical models while the
# multi-stream timeline recovers simulated time: the printed multi-GPU
# serial-vs-streamed comparison and per-record overlap_saved_ns prove
# the overlap actually engaged.
cargo run --release -q -p gbdt-bench --bin repro -- bench --smoke --streams 4 \
  --out /tmp/BENCH_streams.json > /tmp/bench_streams.log
grep -q "overlap_saved" /tmp/bench_streams.log || {
  echo "ci: streamed bench printed no overlap savings" >&2
  exit 1
}
grep -qE '"overlap_saved_ns":[1-9]' /tmp/BENCH_streams.json || {
  echo "ci: no bench record carries nonzero overlap_saved_ns" >&2
  exit 1
}

echo "==> stream zero-perturbation gate (observers + streams, bitwise)"
# Profiler + sanitizer attached to a streamed (4-stream) run must change
# nothing: model, clock, and every charge record bit-for-bit.
cargo test -q -p gbdt-core --test streams \
  observers_do_not_perturb_streamed_training >/dev/null
cargo test -q -p gbdt-core --test streams \
  serial_stream_config_is_bitwise_stable_across_methods_and_sketches >/dev/null

echo "==> sanitized serving smoke (both predict modes under full memcheck)"
# The serving observer test uploads a compiled ensemble and predicts in
# both parallelization schemes with the sanitizer at SanitizeMode::Full,
# asserting a clean report and zero charge perturbation.
cargo test -q -p gbdt-core --test serving observers_do_not_perturb_serving >/dev/null

echo "==> serve smoke benchmark + schema validation + regression gate"
# Batched-serving invariants (bit-identity, >=5x batched speedup,
# tree-level strictly costlier) plus a throughput/resident-bytes
# diff-gate against the committed baseline.
cargo run --release -q -p gbdt-bench --bin repro -- serve --smoke \
  --baseline SERVE_baseline.json --check >/dev/null

echo "==> repo-lint Serve-phase fixture (missing schema key must fire)"
# Proves phase_in_bench_schema would catch a bench schema that never
# learned about Phase::Serve.
cargo test -q -p repo-lint phase_schema_catches_missing_serve_phase >/dev/null

echo "==> chaos smoke (seeded fault matrix: transient retry, device loss, resume)"
# Seeded fault plans against single- and multi-GPU training plus a
# checkpoint/resume roundtrip: every completion must be bit-identical
# to the fault-free reference, every failure a typed error.
cargo run --release -q -p gbdt-bench --bin repro -- chaos --smoke \
  --trees 5 --depth 3 --bins 16 >/dev/null

echo "==> sanitized chaos smoke (recovery paths under full memcheck+racecheck)"
# A transient-fault single-GPU fit, a device-loss multi-GPU fit, and a
# resumed fit, each with the sanitizer at SanitizeMode::Full — the
# retry/degrade/resume re-execution paths must replay clean.
cargo test -q -p gbdt-core --test chaos \
  transient_retry_recovers_bit_identically_and_pays_for_the_retry \
  >/dev/null
cargo test -q -p gbdt-core --test chaos \
  multi_gpu_degrades_to_survivors_with_identical_trees >/dev/null
cargo test -q -p gbdt-core --test checkpoint_resume \
  resume_is_bit_identical_across_hist_methods_and_sketches >/dev/null
cargo test -q -p gbdt-core --test sanitized_recovery >/dev/null

echo "==> repo-lint fault-path fixture (unchecksummed recovery kernel must fire)"
# Proves the kernel contract gives no pass to recovery-path charge
# sites: the bad_repo fault_path fixture kernels must trip sanitize,
# prof_coverage and design_inventory.
cargo test -q -p repo-lint --test golden_json \
  unchecksummed_fault_path_kernel_fires_the_contract >/dev/null

echo "==> telemetry zero-perturbation gate (registry on/off/toggled, bitwise)"
# The metrics registry and flight recorder must be pure observers:
# trees, predictions, clocks, and every charge record bit-identical
# with telemetry attached, detached, or toggled mid-run — across the
# hist-method × sketch grid, multi-GPU, and serving.
cargo test -q -p gbdt-core --test telemetry >/dev/null

echo "==> telemetry golden schema gate (Prometheus + JSON exporters pinned)"
# The schema-versioned JSON export and the Prometheus text exposition
# are golden-pinned; drift fails here before it reaches a dashboard.
cargo test -q -p telemetry >/dev/null

echo "==> unified run report smoke (phase ns must reconcile bitwise with the ledger)"
# `repro report` trains + serves on one telemetry-carrying device and
# exits nonzero unless every per-phase nanosecond total in the registry
# matches the device ledger bit-for-bit, both directions.
cargo run --release -q -p gbdt-bench --bin repro -- report --smoke \
  --out /tmp/REPORT_repro.json --prom /tmp/metrics.prom >/dev/null
grep -q 'telemetry_schema_version' /tmp/REPORT_repro.json || {
  echo "ci: run report missing telemetry schema version" >&2
  exit 1
}
grep -q 'rounds_total' /tmp/metrics.prom || {
  echo "ci: Prometheus exposition missing training counters" >&2
  exit 1
}

echo "ci: all checks passed"
