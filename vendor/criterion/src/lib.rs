//! Vendored minimal stand-in for [criterion](https://docs.rs/criterion).
//!
//! Provides the API surface the `gbdt-bench` targets compile against
//! (`Criterion`, `BenchmarkGroup`, `Bencher::{iter, iter_custom}`,
//! `BenchmarkId`, the `criterion_group!` / `criterion_main!` macros and
//! `black_box`) with a simple mean-of-samples measurement loop instead
//! of criterion's statistical machinery. Results print as one line per
//! benchmark; there is no HTML report or comparison baseline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: function name plus a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Identifier `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.param)
    }
}

/// Measurement driver handed to benchmark closures.
pub struct Bencher<'a> {
    iters: u64,
    /// Measured time for the requested iterations.
    elapsed: Duration,
    _lifetime: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Time `routine` over the requested iteration count.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Let the routine report its own duration for `iters` iterations
    /// (used to feed simulated seconds into the harness).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        self.elapsed = routine(self.iters);
    }
}

/// Shared settings for a group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for compatibility; the stub has no warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; sampling is count-based here.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run `routine` against `input`, printing a mean-time line.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut total = Duration::ZERO;
        let mut iters_total = 0u64;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
                _lifetime: std::marker::PhantomData,
            };
            routine(&mut b, input);
            total += b.elapsed;
            iters_total += b.iters;
        }
        let mean = total.as_secs_f64() / iters_total.max(1) as f64;
        println!("{}/{:<40} {:>12.6} s/iter", self.name, id.to_string(), mean);
        self
    }

    /// Run a parameterless benchmark.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.bench_with_input(id, &(), |b, _| routine(b))
    }

    /// End the group (no-op beyond matching the real API).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark harness.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Fresh harness with default settings.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::new();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("unit");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 1), &2u32, |b, &two| {
            b.iter(|| {
                runs += two;
            })
        });
        group.finish();
        assert_eq!(runs, 6);
    }

    #[test]
    fn iter_custom_records_duration() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("unit");
        group.sample_size(2);
        group.bench_function(BenchmarkId::new("custom", "x"), |b| {
            b.iter_custom(|iters| Duration::from_nanos(100 * iters))
        });
    }
}
