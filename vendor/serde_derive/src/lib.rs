//! Vendored `#[derive(Serialize, Deserialize)]` macros for the vendored
//! `serde` subset (see `vendor/README.md`).
//!
//! Parses the item token stream by hand (no `syn`/`quote`) and emits
//! impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! traits, which route through the `serde::Value` data model.
//!
//! Supported shapes — exactly what this workspace uses:
//! - structs with named fields, including `#[serde(skip)]` fields
//! - enums with unit, tuple, and struct (named-field) variants,
//!   encoded with serde's externally-tagged convention
//!
//! Generics are not supported (nothing in the workspace derives serde
//! on a generic type).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Ser)
}

/// Derive the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::De)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Ser,
    De,
}

/// A named field with its `#[serde(skip)]` flag.
struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn expand(input: TokenStream, dir: Direction) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});")
                .parse()
                .expect("error tokens")
        }
    };
    let code = match (&item, dir) {
        (Item::Struct { name, fields }, Direction::Ser) => gen_struct_ser(name, fields),
        (Item::Struct { name, fields }, Direction::De) => gen_struct_de(name, fields),
        (Item::Enum { name, variants }, Direction::Ser) => gen_enum_ser(name, variants),
        (Item::Enum { name, variants }, Direction::De) => gen_enum_de(name, variants),
    };
    code.parse().expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Does an attribute group contain `serde(skip)`? Rejects any other
/// `serde(...)` content so unsupported attributes fail loudly.
fn attr_serde_skip(group: &proc_macro::Group) -> Result<bool, String> {
    let mut it = group.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(false), // doc comment, cfg, etc.
    }
    match it.next() {
        Some(TokenTree::Group(inner)) => {
            let body: String = inner
                .stream()
                .into_iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(" ");
            if body.trim() == "skip" {
                Ok(true)
            } else {
                Err(format!("unsupported serde attribute: #[serde({body})]"))
            }
        }
        _ => Err("unsupported bare #[serde] attribute".to_string()),
    }
}

/// Consume attributes (`# [ ... ]`) from the front of `tokens`,
/// returning whether any was `#[serde(skip)]`.
fn eat_attrs(
    tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
) -> Result<bool, String> {
    let mut skip = false;
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        skip |= attr_serde_skip(&g)?;
                    }
                    _ => return Err("malformed attribute".to_string()),
                }
            }
            _ => return Ok(skip),
        }
    }
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...), if present.
fn eat_vis(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(id)) = tokens.peek() {
        if id.to_string() == "pub" {
            tokens.next();
            if let Some(TokenTree::Group(g)) = tokens.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    tokens.next();
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    eat_attrs(&mut tokens)?;
    eat_vis(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type `{name}` not supported by vendored serde derive"
            ));
        }
    }
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => return Err(format!("expected braced body for `{name}`, got {other:?}")),
    };

    match kind.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_named_fields(body.stream())?,
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_variants(body.stream())?,
        }),
        other => Err(format!("cannot derive serde traits for `{other}` items")),
    }
}

/// Parse `name: Type, ...` named fields; only names and skip flags are
/// retained (types are recovered by inference in the generated code).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        if tokens.peek().is_none() {
            return Ok(fields);
        }
        let skip = eat_attrs(&mut tokens)?;
        eat_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{name}`, got {other:?}")),
        }
        // Swallow the type: everything up to a top-level comma. Generics
        // arrive pre-grouped except for `<`/`>` puncts, so track depth.
        let mut angle_depth = 0i32;
        loop {
            match tokens.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    tokens.next();
                    break;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    tokens.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    tokens.next();
                }
                _ => {
                    tokens.next();
                }
            }
        }
        fields.push(Field { name, skip });
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        if tokens.peek().is_none() {
            return Ok(variants);
        }
        let skip = eat_attrs(&mut tokens)?;
        if skip {
            return Err("#[serde(skip)] on enum variants is not supported".to_string());
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                tokens.next();
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_commas(g.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        // Optional discriminant (`= expr`) then optional trailing comma.
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '=' {
                return Err("explicit enum discriminants are not supported".to_string());
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == ',' {
                tokens.next();
            }
        }
        variants.push(Variant { name, kind });
    }
}

/// Number of comma-separated entries at the top level of a stream
/// (i.e. tuple-variant arity). Empty stream → 0.
fn count_top_level_commas(stream: TokenStream) -> usize {
    let mut n = 0usize;
    let mut saw_any = false;
    let mut angle_depth = 0i32;
    for t in stream {
        saw_any = true;
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => n += 1,
                _ => {}
            }
        }
    }
    if saw_any {
        n + 1
    } else {
        0
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_struct_ser(name: &str, fields: &[Field]) -> String {
    let mut pushes = String::new();
    for f in fields.iter().filter(|f| !f.skip) {
        let fname = &f.name;
        pushes.push_str(&format!(
            "obj.push(({fname:?}.to_string(), ::serde::Serialize::to_value(&self.{fname})));\n"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(obj)\n\
             }}\n\
         }}\n"
    )
}

fn gen_struct_de(name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        let fname = &f.name;
        if f.skip {
            inits.push_str(&format!("{fname}: ::std::default::Default::default(),\n"));
        } else {
            inits.push_str(&format!("{fname}: ::serde::field(obj, {fname:?})?,\n"));
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::std::string::String> {{\n\
                 let obj = v.as_object().ok_or_else(|| format!(\"expected object for {name}, got {{}}\", v.kind()))?;\n\
                 ::std::result::Result::Ok({name} {{\n\
                     {inits}\
                 }})\n\
             }}\n\
         }}\n"
    )
}

fn gen_enum_ser(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                arms.push_str(&format!(
                    "{name}::{vname} => ::serde::Value::String({vname:?}.to_string()),\n"
                ));
            }
            VariantKind::Tuple(arity) => {
                let binders: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                let pat = binders.join(", ");
                let inner = if *arity == 1 {
                    "::serde::Serialize::to_value(f0)".to_string()
                } else {
                    let elems: Vec<String> = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{vname}({pat}) => ::serde::Value::Object(vec![({vname:?}.to_string(), {inner})]),\n"
                ));
            }
            VariantKind::Struct(fields) => {
                let pat: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                let pat = pat.join(", ");
                let mut pushes = String::new();
                for f in fields.iter().filter(|f| !f.skip) {
                    let fname = &f.name;
                    pushes.push_str(&format!(
                        "obj.push(({fname:?}.to_string(), ::serde::Serialize::to_value({fname})));\n"
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{vname} {{ {pat} }} => {{\n\
                         let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Object(obj))])\n\
                     }}\n"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n\
                     {arms}\
                 }}\n\
             }}\n\
         }}\n"
    )
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    // Unit variants arrive as plain strings; data variants as
    // single-entry objects (externally tagged).
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                unit_arms.push_str(&format!(
                    "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
                ));
            }
            VariantKind::Tuple(arity) => {
                let body = if *arity == 1 {
                    format!(
                        "::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?))"
                    )
                } else {
                    let mut elems = String::new();
                    for i in 0..*arity {
                        elems.push_str(&format!(
                            "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| \"tuple variant too short\".to_string())?)?,"
                        ));
                    }
                    format!(
                        "{{ let items = inner.as_array().ok_or_else(|| \"expected array for tuple variant {vname}\".to_string())?;\n\
                           ::std::result::Result::Ok({name}::{vname}({elems})) }}"
                    )
                };
                data_arms.push_str(&format!("{vname:?} => {body},\n"));
            }
            VariantKind::Struct(fields) => {
                let mut inits = String::new();
                for f in fields {
                    let fname = &f.name;
                    if f.skip {
                        inits.push_str(&format!("{fname}: ::std::default::Default::default(),\n"));
                    } else {
                        inits.push_str(&format!("{fname}: ::serde::field(fields, {fname:?})?,\n"));
                    }
                }
                data_arms.push_str(&format!(
                    "{vname:?} => {{\n\
                         let fields = inner.as_object().ok_or_else(|| \"expected object for variant {vname}\".to_string())?;\n\
                         ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                     }}\n"
                ));
            }
        }
    }
    let unit_match = if unit_arms.is_empty() {
        String::new()
    } else {
        format!(
            "if let ::std::option::Option::Some(s) = v.as_str() {{\n\
                 return match s {{\n\
                     {unit_arms}\
                     other => ::std::result::Result::Err(format!(\"unknown {name} variant `{{other}}`\")),\n\
                 }};\n\
             }}\n"
        )
    };
    let data_match = if data_arms.is_empty() {
        format!("::std::result::Result::Err(format!(\"expected string for {name}, got {{}}\", v.kind()))")
    } else {
        format!(
            "let obj = v.as_object().ok_or_else(|| format!(\"expected variant object for {name}, got {{}}\", v.kind()))?;\n\
             let (tag, inner) = obj.first().ok_or_else(|| \"empty variant object\".to_string())?;\n\
             match tag.as_str() {{\n\
                 {data_arms}\
                 other => ::std::result::Result::Err(format!(\"unknown {name} variant `{{other}}`\")),\n\
             }}\n"
        )
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::std::string::String> {{\n\
                 {unit_match}\
                 {data_match}\
             }}\n\
         }}\n"
    )
}
