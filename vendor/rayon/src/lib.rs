//! Vendored, API-compatible subset of [rayon](https://docs.rs/rayon).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *exact* parallel-iterator surface the codebase
//! uses, implemented over `std::thread::scope`:
//!
//! * `par_iter` / `par_iter_mut` on slices,
//! * `par_chunks` / `par_chunks_mut` / `par_windows`,
//! * `into_par_iter` on `Range<usize>` and `Vec<T>`,
//! * the `map` / `zip` / `enumerate` adapters plus `for_each`,
//!   `collect`, `sum` and `reduce` drivers,
//! * `ThreadPoolBuilder` / `ThreadPool::install` with a thread-count
//!   override (used by the determinism tests to pin 1 vs N threads).
//!
//! Every iterator here is *indexed*: the driver splits `0..len` into
//! contiguous per-thread ranges, so any order-sensitive operation
//! (`collect`, in-order `reduce`) is **bit-identical across thread
//! counts** — a stronger guarantee than rayon's (which is only
//! deterministic for `collect` on indexed iterators as well).
//!
//! Nested parallel calls run inline on the worker thread (one pool
//! level), mirroring rayon's work-stealing behaviour closely enough for
//! this workspace while avoiding thread explosions.

use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// Thread-count policy
// ---------------------------------------------------------------------------

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set on worker threads: nested parallel calls run inline.
    static NESTED: Cell<bool> = const { Cell::new(false) };
}

fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The number of threads the current scope would use.
pub fn current_num_threads() -> usize {
    THREAD_OVERRIDE
        .with(|t| t.get())
        .unwrap_or_else(default_threads)
}

/// Error type returned by [`ThreadPoolBuilder::build`] (infallible
/// here, kept for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a scoped [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin the pool to `n` threads (0 = default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(default_threads),
        })
    }
}

/// A logical thread pool: parallel calls made inside
/// [`ThreadPool::install`] use this pool's thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread count as the ambient default.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        THREAD_OVERRIDE.with(|t| {
            let prev = t.replace(Some(self.num_threads));
            let out = f();
            t.set(prev);
            out
        })
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Run `a` and `b`, potentially in parallel, returning both results.
pub fn join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 || NESTED.with(|n| n.get()) {
        (a(), b())
    } else {
        std::thread::scope(|s| {
            let hb = s.spawn(|| {
                NESTED.with(|n| n.set(true));
                b()
            });
            let ra = a();
            (ra, hb.join().expect("rayon::join worker panicked"))
        })
    }
}

// ---------------------------------------------------------------------------
// Indexed producer model
// ---------------------------------------------------------------------------

/// A random-access producer of `len()` items. `get(i)` must be called
/// at most once per index across all threads (mutable sources hand out
/// disjoint `&mut` borrows under that contract).
///
/// This is the internal engine trait; user code interacts through
/// [`ParallelIterator`].
pub trait IndexedSource: Send + Sync {
    /// The produced item type.
    type Item: Send;
    /// Number of items.
    fn len(&self) -> usize;
    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Produce item `i`.
    ///
    /// # Safety
    /// Each index must be produced at most once overall; mutable
    /// sources rely on this for aliasing safety.
    unsafe fn get(&self, i: usize) -> Self::Item;
}

/// Execute `body(i, item)` for every index, split across threads in
/// contiguous ranges. Returns without spawning when one thread (or a
/// nested context) suffices.
fn drive<I: IndexedSource, F: Fn(usize, I::Item) + Send + Sync>(source: &I, body: F) {
    let len = source.len();
    if len == 0 {
        return;
    }
    let threads = current_num_threads().min(len);
    if threads <= 1 || NESTED.with(|n| n.get()) {
        for i in 0..len {
            // SAFETY: each index visited exactly once.
            unsafe { body(i, source.get(i)) };
        }
        return;
    }
    std::thread::scope(|scope| {
        for t in 0..threads {
            let lo = t * len / threads;
            let hi = (t + 1) * len / threads;
            let body = &body;
            scope.spawn(move || {
                NESTED.with(|n| n.set(true));
                for i in lo..hi {
                    // SAFETY: [lo, hi) ranges are disjoint across threads,
                    // so each index is produced exactly once.
                    unsafe { body(i, source.get(i)) };
                }
            });
        }
    });
}

// ---------------------------------------------------------------------------
// Public combinator surface
// ---------------------------------------------------------------------------

/// The user-facing parallel iterator trait (rayon's `ParallelIterator`
/// + `IndexedParallelIterator`, collapsed).
pub trait ParallelIterator: IndexedSource + Sized {
    /// Map each item through `f`.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Send + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Pair up with another parallel iterator (length = min of both).
    fn zip<B>(self, other: B) -> Zip<Self, B::Iter>
    where
        B: IntoParallelIterator,
    {
        Zip {
            a: self,
            b: other.into_par_iter(),
        }
    }

    /// Attach the item index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Hint accepted for API compatibility (chunking is always even).
    fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Consume every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        drive(&self, |_, item| f(item));
    }

    /// Collect into a container (in index order, deterministically).
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sum the items (tree-free: in index order, deterministic).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
        Self::Item: Send,
    {
        let items: Vec<Self::Item> = collect_vec(self);
        items.into_iter().sum()
    }

    /// Reduce with `identity` and `op`, folding per-thread results in
    /// index order (deterministic for non-commutative `op`).
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        let items: Vec<Self::Item> = collect_vec(self);
        items.into_iter().fold(identity(), &op)
    }
}

impl<T: IndexedSource + Sized> ParallelIterator for T {}

/// Collect a source into a `Vec` preserving index order.
fn collect_vec<I: IndexedSource>(source: I) -> Vec<I::Item> {
    let len = source.len();
    let mut out: Vec<std::mem::MaybeUninit<I::Item>> = Vec::with_capacity(len);
    // SAFETY: MaybeUninit needs no initialization; every slot is
    // written exactly once below before assuming init.
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(len);
    }
    struct Target<T>(*mut std::mem::MaybeUninit<T>);
    // SAFETY: threads write disjoint indices.
    unsafe impl<T> Send for Target<T> {}
    unsafe impl<T> Sync for Target<T> {}
    let target = Target(out.as_mut_ptr());
    let tref = &target;
    drive(&source, move |i, item| {
        // SAFETY: index i is visited exactly once; slots are disjoint.
        unsafe { (*tref.0.add(i)).write(item) };
    });
    // SAFETY: all len slots were initialized by drive.
    unsafe {
        let ptr = out.as_mut_ptr() as *mut I::Item;
        let cap = out.capacity();
        std::mem::forget(out);
        Vec::from_raw_parts(ptr, len, cap)
    }
}

/// Conversion into a parallel iterator (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// Iterator type produced.
    type Iter: IndexedSource<Item = Self::Item>;
    /// Item type.
    type Item: Send;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: IndexedSource> IntoParallelIterator for T {
    type Iter = T;
    type Item = T::Item;
    fn into_par_iter(self) -> T {
        self
    }
}

/// Collection construction from a parallel iterator.
pub trait FromParallelIterator<T: Send> {
    /// Build the collection.
    fn from_par_iter<I: IndexedSource<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: IndexedSource<Item = T>>(iter: I) -> Self {
        collect_vec(iter)
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Parallel iterator over a `Range<usize>`.
pub struct RangeIter {
    start: usize,
    len: usize,
}

impl IndexedSource for RangeIter {
    type Item = usize;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn get(&self, i: usize) -> usize {
        self.start + i
    }
}

/// `(0..n).into_par_iter()` support. (Free impl: Range is foreign but
/// the trait is ours.)
impl IntoParallelIterator for Range<usize> {
    type Iter = RangeIter;
    type Item = usize;
    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

impl IntoParallelIterator for Range<u32> {
    type Iter = MapRange;
    type Item = u32;
    fn into_par_iter(self) -> MapRange {
        MapRange {
            start: self.start,
            len: (self.end.saturating_sub(self.start)) as usize,
        }
    }
}

/// Parallel iterator over a `Range<u32>`.
pub struct MapRange {
    start: u32,
    len: usize,
}

impl IndexedSource for MapRange {
    type Item = u32;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn get(&self, i: usize) -> u32 {
        self.start + i as u32
    }
}

/// Owned-vec parallel iterator (moves items out).
pub struct VecIter<T: Send> {
    data: Vec<T>,
    taken: std::sync::atomic::AtomicBool,
}

impl<T: Send + Sync> IndexedSource for VecIter<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.data.len()
    }
    unsafe fn get(&self, i: usize) -> T {
        // SAFETY: each index is taken at most once per the trait
        // contract; Drop is disarmed by `taken`.
        std::ptr::read(self.data.as_ptr().add(i))
    }
}

impl<T: Send + Sync> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    type Item = T;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter {
            data: self,
            taken: std::sync::atomic::AtomicBool::new(true),
        }
    }
}

impl<T: Send> Drop for VecIter<T> {
    fn drop(&mut self) {
        if self.taken.load(std::sync::atomic::Ordering::Relaxed) {
            // Items were moved out; forget them (leak-free: the drive
            // visits every index exactly once before drop).
            unsafe { self.data.set_len(0) };
        }
    }
}

/// Shared-slice parallel iterator.
pub struct SliceIter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> IndexedSource for SliceIter<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    unsafe fn get(&self, i: usize) -> &'a T {
        self.slice.get_unchecked(i)
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter {
            slice: self.as_slice(),
        }
    }
}

/// Shared chunks of a slice.
pub struct ChunksIter<'a, T: Sync> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> IndexedSource for ChunksIter<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    unsafe fn get(&self, i: usize) -> &'a [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.slice.len());
        self.slice.get_unchecked(lo..hi)
    }
}

/// Overlapping windows of a slice.
pub struct WindowsIter<'a, T: Sync> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> IndexedSource for WindowsIter<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.slice.len().saturating_sub(self.size - 1)
    }
    unsafe fn get(&self, i: usize) -> &'a [T] {
        self.slice.get_unchecked(i..i + self.size)
    }
}

/// Exclusive per-item iterator over a mutable slice.
pub struct SliceIterMut<'a, T: Send> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: items are handed out disjointly (one index once).
unsafe impl<T: Send> Send for SliceIterMut<'_, T> {}
unsafe impl<T: Send> Sync for SliceIterMut<'_, T> {}

impl<'a, T: Send> IndexedSource for SliceIterMut<'a, T> {
    type Item = &'a mut T;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn get(&self, i: usize) -> &'a mut T {
        &mut *self.ptr.add(i)
    }
}

/// Exclusive chunked iterator over a mutable slice.
pub struct ChunksMutIter<'a, T: Send> {
    ptr: *mut T,
    len: usize,
    size: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: chunks are disjoint (one index once).
unsafe impl<T: Send> Send for ChunksMutIter<'_, T> {}
unsafe impl<T: Send> Sync for ChunksMutIter<'_, T> {}

impl<'a, T: Send> IndexedSource for ChunksMutIter<'a, T> {
    type Item = &'a mut [T];
    fn len(&self) -> usize {
        self.len.div_ceil(self.size)
    }
    unsafe fn get(&self, i: usize) -> &'a mut [T] {
        let lo = i * self.size;
        let hi = (lo + self.size).min(self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo)
    }
}

/// `par_iter` / `par_chunks` / `par_windows` on shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> SliceIter<'_, T>;
    /// Parallel iterator over non-overlapping chunks.
    fn par_chunks(&self, size: usize) -> ChunksIter<'_, T>;
    /// Parallel iterator over overlapping windows.
    fn par_windows(&self, size: usize) -> WindowsIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceIter<'_, T> {
        SliceIter { slice: self }
    }
    fn par_chunks(&self, size: usize) -> ChunksIter<'_, T> {
        assert!(size != 0, "chunk size must be non-zero");
        ChunksIter { slice: self, size }
    }
    fn par_windows(&self, size: usize) -> WindowsIter<'_, T> {
        assert!(size != 0, "window size must be non-zero");
        WindowsIter { slice: self, size }
    }
}

/// `par_iter_mut` / `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T`.
    fn par_iter_mut(&mut self) -> SliceIterMut<'_, T>;
    /// Parallel iterator over non-overlapping mutable chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMutIter<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> SliceIterMut<'_, T> {
        SliceIterMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: std::marker::PhantomData,
        }
    }
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMutIter<'_, T> {
        assert!(size != 0, "chunk size must be non-zero");
        ChunksMutIter {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            size,
            _marker: std::marker::PhantomData,
        }
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// Map adapter.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> IndexedSource for Map<I, F>
where
    I: IndexedSource,
    F: Fn(I::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;
    fn len(&self) -> usize {
        self.base.len()
    }
    unsafe fn get(&self, i: usize) -> R {
        (self.f)(self.base.get(i))
    }
}

/// Zip adapter.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: IndexedSource, B: IndexedSource> IndexedSource for Zip<A, B> {
    type Item = (A::Item, B::Item);
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    unsafe fn get(&self, i: usize) -> (A::Item, B::Item) {
        (self.a.get(i), self.b.get(i))
    }
}

/// Enumerate adapter.
pub struct Enumerate<I> {
    base: I,
}

impl<I: IndexedSource> IndexedSource for Enumerate<I> {
    type Item = (usize, I::Item);
    fn len(&self) -> usize {
        self.base.len()
    }
    unsafe fn get(&self, i: usize) -> (usize, I::Item) {
        (i, self.base.get(i))
    }
}

/// The rayon prelude: traits needed for method resolution.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000usize).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_zip_for_each() {
        let mut a = vec![0u32; 100];
        let b: Vec<u32> = (0..100).collect();
        a.par_chunks_mut(7)
            .zip(b.par_chunks(7))
            .enumerate()
            .for_each(|(ci, (ac, bc))| {
                for (x, y) in ac.iter_mut().zip(bc) {
                    *x = *y + ci as u32;
                }
            });
        for (i, &x) in a.iter().enumerate() {
            assert_eq!(x as usize, i + i / 7);
        }
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 3));
    }

    #[test]
    fn windows_sum() {
        let v = [1.0f64, 2.0, 3.0, 4.0];
        let sums: Vec<f64> = v.par_windows(2).map(|w| w.iter().sum()).collect();
        assert_eq!(sums, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn vec_into_par_iter_moves() {
        let v: Vec<String> = (0..50).map(|i| i.to_string()).collect();
        let out: Vec<String> = v.into_par_iter().map(|s| s + "!").collect();
        assert_eq!(out[49], "49!");
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }
}
