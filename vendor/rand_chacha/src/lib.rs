//! Vendored ChaCha8 RNG implementing the vendored `rand` traits.
//!
//! A real ChaCha core (IETF variant, 8 double-rounds) keyed from a
//! 32-byte seed; the keystream is consumed 32 bits at a time. Streams
//! are deterministic given a seed but are not guaranteed to match
//! upstream `rand_chacha` word-for-word (upstream interleaves 4-block
//! batches); nothing in this workspace depends on the upstream stream.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// ChaCha with 8 rounds (4 double-rounds), the speed-oriented variant
/// used for reproducible experiment seeding.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key schedule (constants + key + counter + nonce).
    state: [u32; BLOCK_WORDS],
    /// Current keystream block.
    buf: [u32; BLOCK_WORDS],
    /// Next unread word in `buf` (`BLOCK_WORDS` = exhausted).
    cursor: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (o, s) in w.iter_mut().zip(&self.state) {
            *o = o.wrapping_add(*s);
        }
        self.buf = w;
        self.cursor = 0;
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }

    /// Current word position within the keystream block (test hook).
    pub fn word_pos(&self) -> usize {
        self.cursor
    }

    /// Snapshot the full generator state — key schedule, current
    /// keystream block, and cursor — for checkpointing. Restoring via
    /// [`ChaCha8Rng::from_snapshot`] resumes the stream bit-identically.
    pub fn snapshot(&self) -> ([u32; BLOCK_WORDS], [u32; BLOCK_WORDS], usize) {
        (self.state, self.buf, self.cursor)
    }

    /// Rebuild a generator from a [`ChaCha8Rng::snapshot`]. The cursor
    /// is clamped to the block size so hostile inputs cannot index out
    /// of bounds.
    pub fn from_snapshot(
        state: [u32; BLOCK_WORDS],
        buf: [u32; BLOCK_WORDS],
        cursor: usize,
    ) -> Self {
        ChaCha8Rng {
            state,
            buf,
            cursor: cursor.min(BLOCK_WORDS),
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter (12–13) and nonce (14–15) start at zero.
        ChaCha8Rng {
            state,
            buf: [0; BLOCK_WORDS],
            cursor: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.cursor];
        self.cursor += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "{same}/64 collisions is not random");
    }

    #[test]
    fn keystream_spans_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first: Vec<u32> = (0..40).map(|_| rng.next_u32()).collect();
        let mut rng2 = ChaCha8Rng::seed_from_u64(7);
        let again: Vec<u32> = (0..40).map(|_| rng2.next_u32()).collect();
        assert_eq!(first, again);
        // Blocks differ (counter advanced).
        assert_ne!(&first[..16], &first[16..32]);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let _ = rng.gen_range(0..1000u32);
        let mut fork = rng.clone();
        assert_eq!(rng.next_u64(), fork.next_u64());
    }
}
