//! Vendored subset of [proptest](https://docs.rs/proptest).
//!
//! Implements the strategy combinators and macros this workspace uses:
//! `proptest!` with `#![proptest_config(...)]`, `any::<T>()`, range
//! strategies, `Just`, tuple strategies, `prop_map` / `prop_flat_map`,
//! `prop_oneof!`, `collection::vec`, and `prop_assert!` /
//! `prop_assert_eq!`.
//!
//! Differences from upstream: **no shrinking** (the first failing input
//! is reported as-is) and a deterministic per-test RNG seeded from the
//! test name, so failures reproduce across runs.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt::Debug;
use std::rc::Rc;

/// Per-test randomness source (deterministic; seeded from the test name).
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// Deterministic RNG for the named test.
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the test name → stable seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(h))
    }

    /// Access the underlying RNG.
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        &mut self.0
    }
}

/// Runner configuration (subset: case count only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values (upstream's `Strategy`, minus shrinking).
pub trait Strategy {
    /// Generated value type.
    type Value: Clone + Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then a strategy from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe strategy facade backing [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy (upstream's `BoxedStrategy`).
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Clone + Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Clone + Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `.prop_flat_map` adapter.
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// Weighted choice between type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: Clone + Debug> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T: Clone + Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.rng().gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight accounting");
    }
}

/// Whole-domain sampling for `any::<T>()`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniform strategy over the full domain of `T`.
pub fn any<T>() -> Any<T>
where
    T: rand::StandardSample + Clone + Debug,
{
    Any(std::marker::PhantomData)
}

impl<T> Strategy for Any<T>
where
    T: rand::StandardSample + Clone + Debug,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_standard(rng.rng())
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: Clone + Debug,
    std::ops::Range<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.rng().gen_range(self.clone())
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: Clone + Debug,
    std::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.rng().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $i:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specifications accepted by [`vec`] (upstream's
    /// `IntoSizeRange`): an exact `usize` or a half-open range.
    pub trait IntoSizeRange {
        /// Convert into a half-open length range.
        fn into_size_range(self) -> std::ops::Range<usize>;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> std::ops::Range<usize> {
            self..self + 1
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn into_size_range(self) -> std::ops::Range<usize> {
            self
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn into_size_range(self) -> std::ops::Range<usize> {
            *self.start()..*self.end() + 1
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Vector of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        let len = len.into_size_range();
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng().gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Property-test failure (produced by `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Commonly used re-exports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Discard a case whose inputs do not satisfy a precondition. Upstream
/// proptest re-draws inputs; this subset simply treats the case as
/// vacuously passing (the deterministic RNG still advances, so
/// remaining cases are unaffected).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Assert inside a property, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Weighted (or unweighted) choice among strategies with a common
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Define property tests. Each `#[test] fn name(arg in strategy, ...)
/// { body }` becomes a zero-argument `#[test]` running `config.cases`
/// random cases; failing inputs are printed before the panic
/// propagates. As in upstream proptest, the `#[test]` attribute is
/// written by the caller and forwarded.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let inputs = ($($crate::Strategy::generate(&($strat), &mut rng),)+);
                let cloned = inputs.clone();
                // The body runs in a Result-returning closure so that
                // upstream-style `return Ok(())` early exits typecheck.
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        #[allow(unused_parens, unused_mut)]
                        let ($(mut $arg),+ ,) = cloned;
                        $body
                        ::std::result::Result::Ok(())
                    },
                ));
                let report = || {
                    eprintln!(
                        "proptest case {case} of {} failed for `{}` with inputs {:#?}",
                        config.cases,
                        stringify!($name),
                        inputs,
                    );
                };
                match outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(e)) => {
                        report();
                        panic!("proptest case rejected: {}", e.0);
                    }
                    ::std::result::Result::Err(payload) => {
                        report();
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_respects_weights_loosely() {
        let s = prop_oneof![9 => Just(1u32), 1 => Just(2u32)];
        let mut rng = crate::TestRng::deterministic("weights");
        let ones = (0..1000)
            .filter(|_| Strategy::generate(&s, &mut rng) == 1)
            .count();
        assert!(ones > 700, "{ones}/1000 picks of the 90% arm");
    }

    #[test]
    fn vec_lengths_in_range() {
        let s = crate::collection::vec(0u32..10, 2..5);
        let mut rng = crate::TestRng::deterministic("vec");
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn flat_map_chains() {
        let s = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..4, n..n + 1));
        let mut rng = crate::TestRng::deterministic("flat");
        for _ in 0..50 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_generates_cases(x in 0u32..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            let _ = flip;
        }
    }
}
