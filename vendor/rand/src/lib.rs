//! Vendored, API-compatible subset of [rand 0.8](https://docs.rs/rand).
//!
//! Implements exactly the surface this workspace uses: the [`RngCore`] /
//! [`SeedableRng`] / [`Rng`] traits, `gen`, `gen_range` over half-open
//! ranges, `gen_bool`, and `seq::SliceRandom::{shuffle, choose}`.
//!
//! The value streams are deterministic given an `RngCore`
//! implementation but are **not** guaranteed to match upstream rand
//! bit-for-bit; every consumer in this workspace only relies on
//! self-consistency under a fixed seed.

/// Low-level random source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable random source.
pub trait SeedableRng: Sized {
    /// Fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded with SplitMix64 (same scheme as
    /// upstream `rand_core`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their whole domain (rand's `Standard`
/// distribution, folded into a helper trait).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64
);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 mantissa bits → uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A half-open range samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` via Lemire's widening multiply with
/// rejection (unbiased).
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = bound.wrapping_neg() % bound; // # of biased low values
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_u64_below(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(uniform_u64_below(rng, span + 1) as i64) as $t
            }
        }
    )*};
}

impl_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                // lo + u·(hi − lo), clamped below hi to keep half-open.
                let v = self.start + u * (self.end - self.start);
                if v >= self.end {
                    // fp rounding may hit `end`; nudge inside.
                    <$t>::max(self.start, self.end - (self.end - self.start) * <$t>::EPSILON)
                } else {
                    v
                }
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// User-facing random-value API (extension of [`RngCore`]).
pub trait Rng: RngCore {
    /// Sample a value uniformly over the type's domain.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        f64::sample_standard(self) < p
    }

    /// Fill a mutable slice with standard samples.
    fn fill<T: StandardSample>(&mut self, dest: &mut [T]) {
        for v in dest {
            *v = T::sample_standard(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice randomization (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly used re-exports.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(0..17);
            assert!(v < 17);
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = Lcg(3);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut Lcg(9));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Lcg(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
