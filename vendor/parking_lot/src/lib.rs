//! Vendored std-backed subset of [parking_lot](https://docs.rs/parking_lot):
//! `Mutex` / `RwLock` with panic-free (non-poisoning) lock methods.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex (std-backed).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (poison-transparent).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader–writer lock (std-backed).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
