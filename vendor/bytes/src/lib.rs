//! Vendored subset of [bytes](https://docs.rs/bytes): `Bytes`, `BytesMut`,
//! and the `Buf` / `BufMut` traits, backed by plain `Vec<u8>` / `&[u8]`.
//!
//! Only the little-endian accessors this workspace uses are provided.

use std::ops::Deref;

/// Immutable byte buffer (here: an owned `Vec<u8>` behind `Deref<[u8]>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

/// Growable byte buffer used for serialization.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Number of written bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

macro_rules! put_le {
    ($($fn:ident => $t:ty),*) => {$(
        #[doc = concat!("Append a little-endian `", stringify!($t), "`.")]
        fn $fn(&mut self, v: $t) {
            self.put_slice(&v.to_le_bytes());
        }
    )*};
}

/// Write-side buffer trait (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    put_le!(
        put_u16_le => u16, put_u32_le => u32, put_u64_le => u64,
        put_i16_le => i16, put_i32_le => i32, put_i64_le => i64,
        put_f32_le => f32, put_f64_le => f64
    );
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

macro_rules! get_le {
    ($($fn:ident => $t:ty),*) => {$(
        #[doc = concat!("Read a little-endian `", stringify!($t), "` and advance.")]
        fn $fn(&mut self) -> $t {
            let mut raw = [0u8; std::mem::size_of::<$t>()];
            self.copy_to_slice(&mut raw);
            <$t>::from_le_bytes(raw)
        }
    )*};
}

/// Read-side buffer trait (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skip `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Copy `dst.len()` bytes out and advance. Panics on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte and advance.
    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }

    get_le!(
        get_u16_le => u16, get_u32_le => u32, get_u64_le => u64,
        get_i16_le => i16, get_i32_le => i32, get_i64_le => i64,
        get_f32_le => f32, get_f64_le => f64
    );
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u16_le(513);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_f32_le(1.5);
        w.put_f64_le(-2.25);
        w.put_slice(b"ok");
        let frozen = w.freeze();

        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 513);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        let mut tail = [0u8; 2];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"ok");
        assert!(!r.has_remaining());
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.get_u8(), 3);
    }
}
