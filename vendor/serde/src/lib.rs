//! Vendored subset of [serde](https://docs.rs/serde) routed through an
//! in-memory [`Value`] data model.
//!
//! The real serde is a zero-copy visitor framework; this vendored
//! replacement keeps only the workspace-visible surface — the
//! [`Serialize`] / [`Deserialize`] traits and their derive macros — and
//! funnels everything through `Value`, which `serde_json` then prints
//! and parses. All workspace consumers only do full round-trips, so the
//! intermediate tree costs nothing observable.

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing data model: the subset of JSON that serde's derived
/// impls produce (numbers split by signedness to round-trip `u64`).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of `None`).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer.
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Borrow as an object entry slice.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Types encodable into a [`Value`].
pub trait Serialize {
    /// Encode `self`.
    fn to_value(&self) -> Value;
}

/// Types decodable from a [`Value`].
pub trait Deserialize: Sized {
    /// Decode from a value; errors are human-readable strings.
    fn from_value(v: &Value) -> Result<Self, String>;
}

/// Look up a struct field by name; a missing key deserializes from
/// `Null` so `Option` fields default to `None` (serde's behavior for
/// omitted optional fields).
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, String> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| format!("field `{name}`: {e}")),
        None => T::from_value(&Value::Null).map_err(|_| format!("missing field `{name}`")),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {}", other.kind())),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if v < 0 {
                    Value::Int(v as i64)
                } else {
                    Value::UInt(v as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => *f as i128,
                    other => return Err(format!(
                        "expected integer, got {}", other.kind()
                    )),
                };
                <$t>::try_from(wide).map_err(|_| format!(
                    "integer {wide} out of range for {}", stringify!($t)
                ))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(format!("expected number, got {}", other.kind())),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {}", other.kind())),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(format!("expected single-char string, got {}", other.kind())),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(format!("expected array, got {}", other.kind())),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, String> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        <[T; N]>::try_from(items).map_err(|_| format!("expected {N} elements, got {got}"))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $i:tt),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, String> {
                let items = v.as_array().ok_or_else(|| {
                    format!("expected array for tuple, got {}", v.kind())
                })?;
                Ok(($(
                    $t::from_value(items.get($i).ok_or_else(|| {
                        format!("tuple too short at index {}", $i)
                    })?)?,
                )+))
            }
        }
    )+};
}

impl_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

/// Map keys must encode as strings (or integers, which are stringified,
/// matching `serde_json`'s integer-key support).
fn key_to_string(v: &Value) -> Result<String, String> {
    match v {
        Value::String(s) => Ok(s.clone()),
        Value::Int(i) => Ok(i.to_string()),
        Value::UInt(u) => Ok(u.to_string()),
        other => Err(format!("map key must be a string, got {}", other.kind())),
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    (
                        key_to_string(&k.to_value()).expect("stringifiable map key"),
                        v.to_value(),
                    )
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, String> {
        let entries = v
            .as_object()
            .ok_or_else(|| format!("expected object for map, got {}", v.kind()))?;
        entries
            .iter()
            .map(|(k, v)| {
                Ok((
                    K::from_value(&Value::String(k.clone()))
                        .map_err(|e| format!("map key `{k}`: {e}"))?,
                    V::from_value(v)?,
                ))
            })
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u32).to_value(), Value::UInt(3));
    }

    #[test]
    fn missing_field_defaults_option() {
        let obj: Vec<(String, Value)> = vec![];
        let got: Option<f64> = field(&obj, "absent").unwrap();
        assert_eq!(got, None);
        assert!(field::<u32>(&obj, "absent").is_err());
    }

    #[test]
    fn int_range_checked() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert_eq!(i64::from_value(&Value::Int(-5)).unwrap(), -5);
        assert_eq!(u64::from_value(&Value::UInt(u64::MAX)).unwrap(), u64::MAX);
    }

    #[test]
    fn map_round_trip() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.5f64);
        let v = m.to_value();
        let back: BTreeMap<String, f64> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
