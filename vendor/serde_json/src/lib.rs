//! Vendored subset of [serde_json](https://docs.rs/serde_json):
//! `to_string` / `to_vec` / `from_str` / `from_slice` over the vendored
//! `serde::Value` data model.
//!
//! Emission uses Rust's shortest-round-trip float formatting, so every
//! finite `f64` (and widened `f32`) survives print → parse exactly.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value())?;
    Ok(out)
}

/// Serialize to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s.as_bytes()).parse_document()?;
    T::from_value(&value).map_err(Error)
}

/// Deserialize from JSON bytes (must be UTF-8).
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes)
        .map_err(|e| Error(format!("invalid UTF-8 in JSON input: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error(format!("non-finite float {f} is not valid JSON")));
            }
            // `{:?}` is shortest-round-trip and always includes a `.0`
            // or exponent, keeping the token a float on re-parse.
            out.push_str(&format!("{f:?}"));
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Parser { bytes, pos: 0 }
    }

    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected character `{}`", b as char))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        debug_assert_eq!(self.bytes.get(self.pos), Some(&b'"'));
        self.pos += 1;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pair support for completeness.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                let combined = 0x10000
                                    + (((cp - 0xD800) as u32) << 10)
                                    + (low - 0xDC00) as u32;
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp as u32)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input validated as UTF-8).
                    let len = utf8_len(b);
                    let slice = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(slice)
                            .map_err(|_| self.err("invalid UTF-8 in string"))?,
                    );
                    self.pos += len;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u16::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::String("a\"b\\c\n".to_string())),
            (
                "nums".to_string(),
                Value::Array(vec![
                    Value::UInt(u64::MAX),
                    Value::Int(-42),
                    Value::Float(0.1),
                    Value::Float(3.0),
                ]),
            ),
            ("flag".to_string(), Value::Bool(true)),
            ("nothing".to_string(), Value::Null),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_shortest_round_trip() {
        for f in [0.1f64, 1e300, -2.5e-10, 3.0, f64::MIN_POSITIVE] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "{text}");
        }
    }

    #[test]
    fn non_finite_rejected() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""Aé😀""#).unwrap();
        assert_eq!(v, Value::String("Aé😀".to_string()));
    }

    #[test]
    fn option_round_trip() {
        let text = to_string(&Option::<u32>::None).unwrap();
        assert_eq!(text, "null");
        let back: Option<u32> = from_str(&text).unwrap();
        assert_eq!(back, None);
    }
}
